#include "verify/soundness.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "eval/evaluator.h"
#include "optimizer/optimizer.h"
#include "rewrite/properties.h"
#include "rewrite/types.h"
#include "term/intern.h"
#include "verify/query_gen.h"

namespace kola {

// ---------------------------------------------------------------------------
// Configuration matrix
// ---------------------------------------------------------------------------

std::string PipelineConfig::Name() const {
  std::vector<std::string> parts;
  if (interning) parts.push_back("intern");
  if (fixpoint_memo) parts.push_back("memo");
  if (physical_fastpaths) parts.push_back("fast");
  if (parts.empty()) return "plain";
  return Join(parts, "+");
}

StatusOr<PipelineConfig> ParsePipelineConfig(const std::string& name) {
  PipelineConfig config;
  config.interning = false;
  config.fixpoint_memo = false;
  config.physical_fastpaths = false;
  if (name == "plain") return config;
  size_t start = 0;
  while (start <= name.size()) {
    size_t plus = name.find('+', start);
    std::string part = name.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    if (part == "intern") {
      config.interning = true;
    } else if (part == "memo") {
      config.fixpoint_memo = true;
    } else if (part == "fast") {
      config.physical_fastpaths = true;
    } else {
      return InvalidArgumentError(
          "unknown pipeline feature '" + part +
          "' (expected intern, memo, fast, or the name 'plain')");
    }
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return config;
}

std::vector<PipelineConfig> FullConfigMatrix() {
  std::vector<PipelineConfig> configs;
  for (bool intern : {false, true}) {
    for (bool memo : {false, true}) {
      for (bool fast : {false, true}) {
        configs.push_back(PipelineConfig{intern, memo, fast});
      }
    }
  }
  return configs;
}

Rule PlantedDropMapRule() {
  auto rule = MakeRule(
      "plant.drop-map",
      "TEST ONLY: deliberately unsound -- drops the projection of a map",
      "iterate(?p, ?f)", "iterate(?p, id)", Sort::kFunction);
  KOLA_CHECK_OK(rule.status());
  return std::move(rule).value();
}

// ---------------------------------------------------------------------------
// Term metrics and reductions
// ---------------------------------------------------------------------------

int TermDepth(const TermPtr& term) {
  int depth = 0;
  for (const TermPtr& child : term->children()) {
    depth = std::max(depth, 1 + TermDepth(child));
  }
  return depth;
}

namespace {

/// Appends every well-sorted term strictly smaller than `term` obtainable
/// by one local reduction: replacing any subterm with a same-sorted child
/// of it, with `id` (function slots), or with `Kp(T)` (predicate slots).
/// Candidates closest to the root come first, so the greedy shrinker tries
/// the biggest cuts first.
void CollectReductions(const TermPtr& term, std::vector<TermPtr>* out) {
  for (const TermPtr& child : term->children()) {
    if (child->sort() == term->sort()) out->push_back(child);
  }
  if (term->sort() == Sort::kFunction && term->node_count() > 1) {
    out->push_back(Id());
  }
  if (term->sort() == Sort::kPredicate && term->node_count() > 2) {
    out->push_back(ConstPredTrue());
  }
  for (size_t i = 0; i < term->arity(); ++i) {
    std::vector<TermPtr> reduced_child;
    CollectReductions(term->child(i), &reduced_child);
    for (TermPtr& replacement : reduced_child) {
      std::vector<TermPtr> children = term->children();
      children[i] = std::move(replacement);
      auto rebuilt = term->TryWithChildren(std::move(children));
      // An ill-sorted rebuild just means this reduction does not apply
      // here; skip it rather than abort (the whole point of
      // TryWithChildren).
      if (rebuilt.ok() && rebuilt.value()->node_count() < term->node_count()) {
        out->push_back(std::move(rebuilt).value());
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Divergence reporting
// ---------------------------------------------------------------------------

std::string Divergence::ReplayCommand() const {
  std::string cmd = "kolaverify --replay '" + query->ToString() +
                    "' --world-seed " + std::to_string(world_seed) +
                    " --world-scale " + std::to_string(world_scale) +
                    " --config " + config.Name();
  if (planted) cmd += " --plant-unsound";
  return cmd;
}

std::string Divergence::Report() const {
  std::string report =
      "UNSOUND: optimized plan disagrees with the original query\n";
  report += "  query:     " + query->ToString() + "\n";
  report += "  optimized: " + optimized->ToString() + "\n";
  report += "  world:     seed=" + std::to_string(world_seed) +
            " scale=" + std::to_string(world_scale) + "\n";
  report += "  config:    " + config.Name() + "\n";
  report += "  rules:     " +
            (rule_trace.empty() ? std::string("(none fired)")
                                : Join(rule_trace, ", ")) +
            "\n";
  report += "  expected:  " + expected + "\n";
  report += "  actual:    " + actual + "\n";
  report += "  replay:    " + ReplayCommand() + "\n";
  if (!Term::Equal(query, original_query)) {
    report += "  shrunk from: " + original_query->ToString() + "\n";
  }
  return report;
}

std::string SoundnessReport::Summary() const {
  std::string summary =
      "soundness: " + std::to_string(trials) + " trials (" +
      std::to_string(evaluated) + " evaluated, " +
      std::to_string(gen_skipped) + " gen-skipped, " +
      std::to_string(eval_skipped) + " eval-skipped), " +
      std::to_string(config_runs) + " config cells, " +
      std::to_string(strictness) + " strictness diffs, " +
      std::to_string(failures.size()) + " divergences";
  summary += failures.empty() ? " -- CLEAN" : " -- UNSOUND";
  return summary;
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

/// What happened when one query ran through the pipeline under one config.
struct SoundnessHarness::RunOutcome {
  bool skipped = false;     // a step budget was exhausted; no verdict
  bool strictness = false;  // pipeline errored where the baseline did not
  bool diverged = false;
  TermPtr optimized;
  std::string expected;
  std::string actual;
  std::vector<std::string> rule_trace;
};

SoundnessHarness::RunOutcome SoundnessHarness::RunConfig(
    const TermPtr& query, const Database& db,
    const PipelineConfig& config) const {
  RunOutcome out;
  ScopedInterning interning(config.interning);
  TermPtr q = config.interning ? GlobalTermInterner().Intern(query) : query;

  // Ground truth: the un-optimized query under the naive nested-loop
  // semantics. Fastpaths are part of what is being tested, so they stay
  // off here even when the config turns them on for the optimized side.
  Evaluator baseline(
      &db, EvalOptions{.max_steps = options_.max_eval_steps,
                       .physical_fastpaths = false});
  auto expected = baseline.EvalObject(q);
  if (!expected.ok()) {
    out.skipped = true;
    return out;
  }

  PropertyStore properties = PropertyStore::Default();
  RewriterOptions engine_options;
  engine_options.memoize_fixpoint = config.fixpoint_memo;
  Optimizer optimizer(&properties, &db, engine_options);
  auto result = optimizer.Optimize(q);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted) {
      out.skipped = true;
    } else {
      out.strictness = true;
    }
    return out;
  }

  std::vector<std::pair<TermPtr, std::vector<std::string>>> plans;
  std::vector<std::string> fired = result->trace.RuleIds();
  plans.emplace_back(result->rewritten, fired);
  if (!Term::Equal(result->query, result->rewritten)) {
    plans.emplace_back(result->query, fired);
  }
  // Planted rules model "this rule fired during optimization": one
  // application each, on top of the genuine pipeline output.
  for (const Rule& rule : options_.extra_rules) {
    RewriteStep step;
    auto after = optimizer.rewriter().ApplyOnce(rule, result->rewritten,
                                                &step);
    if (after.has_value()) {
      std::vector<std::string> trace = fired;
      trace.push_back(rule.id);
      plans.emplace_back(std::move(after).value(), std::move(trace));
    }
  }

  for (auto& [plan, trace] : plans) {
    Evaluator eval(
        &db, EvalOptions{.max_steps = options_.max_eval_steps,
                         .physical_fastpaths = config.physical_fastpaths});
    auto actual = eval.EvalObject(plan);
    if (!actual.ok()) {
      if (actual.status().code() == StatusCode::kResourceExhausted) {
        out.skipped = true;
      } else {
        out.strictness = true;
      }
      continue;
    }
    if (actual.value() == expected.value()) continue;
    out.diverged = true;
    out.optimized = plan;
    out.expected = expected.value().ToString();
    out.actual = actual.value().ToString();
    out.rule_trace = std::move(trace);
    return out;
  }
  return out;
}

Divergence SoundnessHarness::ShrinkDivergence(Divergence failure) const {
  RandomWorldOptions world;
  world.seed = failure.world_seed;
  world.scale = failure.world_scale;

  auto diverges = [&](const TermPtr& candidate,
                      const RandomWorldOptions& w,
                      RunOutcome* out) -> bool {
    auto db = BuildRandomWorld(w);
    *out = RunConfig(candidate, *db, failure.config);
    return out->diverged;
  };
  auto adopt = [&failure](const TermPtr& candidate, RunOutcome out) {
    failure.query = candidate;
    failure.optimized = std::move(out.optimized);
    failure.expected = std::move(out.expected);
    failure.actual = std::move(out.actual);
    failure.rule_trace = std::move(out.rule_trace);
  };

  // Greedy first-improvement descent over local term reductions: adopt any
  // strictly smaller query that still diverges, until none does.
  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<TermPtr> candidates;
    CollectReductions(failure.query, &candidates);
    for (const TermPtr& candidate : candidates) {
      RunOutcome out;
      if (!diverges(candidate, world, &out)) continue;
      adopt(candidate, std::move(out));
      improved = true;
      break;
    }
  }

  // Then shrink the database: smallest scale (same seed) that still shows
  // the divergence. Scale 0 forces every extent empty.
  for (int scale = 0; scale < world.scale; ++scale) {
    RandomWorldOptions smaller = world;
    smaller.scale = scale;
    RunOutcome out;
    if (!diverges(failure.query, smaller, &out)) continue;
    world = smaller;
    adopt(failure.query, std::move(out));
    break;
  }
  failure.world_scale = world.scale;
  return failure;
}

StatusOr<std::optional<Divergence>> SoundnessHarness::CheckQuery(
    const TermPtr& query, const RandomWorldOptions& world,
    const PipelineConfig& config) {
  auto db = BuildRandomWorld(world);
  RunOutcome out = RunConfig(query, *db, config);
  if (!out.diverged) return std::optional<Divergence>();
  Divergence failure;
  failure.query = query;
  failure.original_query = query;
  failure.optimized = std::move(out.optimized);
  failure.world_seed = world.seed;
  failure.world_scale = world.scale;
  failure.config = config;
  failure.planted = !options_.extra_rules.empty();
  failure.expected = std::move(out.expected);
  failure.actual = std::move(out.actual);
  failure.rule_trace = std::move(out.rule_trace);
  if (options_.shrink) failure = ShrinkDivergence(std::move(failure));
  return std::optional<Divergence>(std::move(failure));
}

StatusOr<SoundnessReport> SoundnessHarness::Run() {
  SoundnessReport report;
  Rng rng(options_.seed);
  SchemaTypes schema = SchemaTypes::CarWorld();
  for (int trial = 0; trial < options_.trials; ++trial) {
    if (static_cast<int>(report.failures.size()) >= options_.max_failures) {
      break;
    }
    uint64_t world_seed = static_cast<uint64_t>(
        rng.Uniform(0, std::numeric_limits<int64_t>::max()));
    RandomWorldOptions world = RandomWorldOptions::FromSeed(world_seed);
    auto db = BuildRandomWorld(world);

    Rng query_rng = rng.Fork();
    QueryGenerator generator(&schema, db.get(), &query_rng,
                             QueryGenOptions{.max_depth = options_.gen_depth});
    auto query = generator.RandomQuery();
    ++report.trials;
    if (!query.ok()) {
      ++report.gen_skipped;
      continue;
    }

    // One cheap un-instrumented probe so trials whose baseline cannot
    // evaluate (runtime type error, step budget) are classified once
    // instead of once per config.
    Evaluator probe(db.get(),
                    EvalOptions{.max_steps = options_.max_eval_steps,
                                .physical_fastpaths = false});
    if (!probe.EvalObject(query.value()).ok()) {
      ++report.eval_skipped;
      continue;
    }
    ++report.evaluated;

    for (const PipelineConfig& config : options_.configs) {
      ++report.config_runs;
      RunOutcome out = RunConfig(query.value(), *db, config);
      if (out.strictness) ++report.strictness;
      if (!out.diverged) continue;
      Divergence failure;
      failure.query = query.value();
      failure.original_query = query.value();
      failure.optimized = std::move(out.optimized);
      failure.world_seed = world.seed;
      failure.world_scale = world.scale;
      failure.config = config;
      failure.planted = !options_.extra_rules.empty();
      failure.expected = std::move(out.expected);
      failure.actual = std::move(out.actual);
      failure.rule_trace = std::move(out.rule_trace);
      if (options_.shrink) failure = ShrinkDivergence(std::move(failure));
      report.failures.push_back(std::move(failure));
      if (static_cast<int>(report.failures.size()) >=
          options_.max_failures) {
        break;
      }
    }
  }
  return report;
}

}  // namespace kola
