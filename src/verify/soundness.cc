#include "verify/soundness.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/governor.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "eval/evaluator.h"
#include "optimizer/optimizer.h"
#include "optimizer/retry.h"
#include "rewrite/properties.h"
#include "rewrite/types.h"
#include "term/intern.h"
#include "verify/query_gen.h"

namespace kola {

// ---------------------------------------------------------------------------
// Configuration matrix
// ---------------------------------------------------------------------------

std::string PipelineConfig::Name() const {
  std::vector<std::string> parts;
  if (interning) parts.push_back("intern");
  if (fixpoint_memo) parts.push_back("memo");
  if (physical_fastpaths) parts.push_back("fast");
  if (rule_index) parts.push_back("index");
  if (egraph) parts.push_back("egraph");
  if (parts.empty()) return "plain";
  return Join(parts, "+");
}

StatusOr<PipelineConfig> ParsePipelineConfig(const std::string& name) {
  PipelineConfig config;
  config.interning = false;
  config.fixpoint_memo = false;
  config.physical_fastpaths = false;
  config.rule_index = false;
  config.egraph = false;
  if (name == "plain") return config;
  size_t start = 0;
  while (start <= name.size()) {
    size_t plus = name.find('+', start);
    std::string part = name.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    bool* feature = nullptr;
    if (part == "intern") {
      feature = &config.interning;
    } else if (part == "memo") {
      feature = &config.fixpoint_memo;
    } else if (part == "fast") {
      feature = &config.physical_fastpaths;
    } else if (part == "index") {
      feature = &config.rule_index;
    } else if (part == "egraph") {
      feature = &config.egraph;
    } else {
      return InvalidArgumentError(
          "unknown pipeline feature '" + part +
          "' (expected intern, memo, fast, index, egraph, or the name "
          "'plain')");
    }
    if (*feature) {
      return InvalidArgumentError("duplicate pipeline feature '" + part +
                                  "' in '" + name + "'");
    }
    *feature = true;
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return config;
}

std::vector<PipelineConfig> FullConfigMatrix() {
  std::vector<PipelineConfig> configs;
  for (bool intern : {false, true}) {
    for (bool memo : {false, true}) {
      for (bool fast : {false, true}) {
        for (bool index : {false, true}) {
          for (bool egraph : {false, true}) {
            configs.push_back(
                PipelineConfig{intern, memo, fast, index, egraph});
          }
        }
      }
    }
  }
  return configs;
}

Rule PlantedDropMapRule() {
  auto rule = MakeRule(
      "plant.drop-map",
      "TEST ONLY: deliberately unsound -- drops the projection of a map",
      "iterate(?p, ?f)", "iterate(?p, id)", Sort::kFunction);
  KOLA_CHECK_OK(rule.status());
  return std::move(rule).value();
}

// ---------------------------------------------------------------------------
// Term metrics and reductions
// ---------------------------------------------------------------------------

int TermDepth(const TermPtr& term) {
  int depth = 0;
  for (const TermPtr& child : term->children()) {
    depth = std::max(depth, 1 + TermDepth(child));
  }
  return depth;
}

namespace {

/// Appends every well-sorted term strictly smaller than `term` obtainable
/// by one local reduction: replacing any subterm with a same-sorted child
/// of it, with `id` (function slots), or with `Kp(T)` (predicate slots).
/// Candidates closest to the root come first, so the greedy shrinker tries
/// the biggest cuts first.
void CollectReductions(const TermPtr& term, std::vector<TermPtr>* out) {
  for (const TermPtr& child : term->children()) {
    if (child->sort() == term->sort()) out->push_back(child);
  }
  if (term->sort() == Sort::kFunction && term->node_count() > 1) {
    out->push_back(Id());
  }
  if (term->sort() == Sort::kPredicate && term->node_count() > 2) {
    out->push_back(ConstPredTrue());
  }
  for (size_t i = 0; i < term->arity(); ++i) {
    std::vector<TermPtr> reduced_child;
    CollectReductions(term->child(i), &reduced_child);
    for (TermPtr& replacement : reduced_child) {
      std::vector<TermPtr> children = term->children();
      children[i] = std::move(replacement);
      auto rebuilt = term->TryWithChildren(std::move(children));
      // An ill-sorted rebuild just means this reduction does not apply
      // here; skip it rather than abort (the whole point of
      // TryWithChildren).
      if (rebuilt.ok() && rebuilt.value()->node_count() < term->node_count()) {
        out->push_back(std::move(rebuilt).value());
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Divergence reporting
// ---------------------------------------------------------------------------

std::string Divergence::ReplayCommand() const {
  std::string cmd = "kolaverify --replay '" + query->ToString() +
                    "' --world-seed " + std::to_string(world_seed) +
                    " --world-scale " + std::to_string(world_scale) +
                    " --config " + config.Name();
  if (planted) cmd += " --plant-unsound";
  if (deadline_ms > 0) cmd += " --deadline-ms " + std::to_string(deadline_ms);
  if (memory_budget_bytes > 0) {
    cmd += " --memory-budget " + std::to_string(memory_budget_bytes);
  }
  if (retries > 0) cmd += " --retries " + std::to_string(retries);
  if (!fault_spec.empty()) {
    cmd += " --faults '" + fault_spec + "' --fault-seed " +
           std::to_string(fault_stream);
  }
  return cmd;
}

std::string Divergence::Report() const {
  std::string report =
      "UNSOUND: optimized plan disagrees with the original query\n";
  report += "  query:     " + query->ToString() + "\n";
  report += "  optimized: " + optimized->ToString() + "\n";
  report += "  world:     seed=" + std::to_string(world_seed) +
            " scale=" + std::to_string(world_scale) + "\n";
  report += "  config:    " + config.Name() + "\n";
  report += "  rules:     " +
            (rule_trace.empty() ? std::string("(none fired)")
                                : Join(rule_trace, ", ")) +
            "\n";
  if (!fault_spec.empty()) {
    report += "  faults:    " + fault_spec +
              " stream=" + std::to_string(fault_stream) + "\n";
  }
  if (deadline_ms > 0) {
    report += "  deadline:  " + std::to_string(deadline_ms) + "ms\n";
  }
  if (memory_budget_bytes > 0) {
    report += "  memory:    " + std::to_string(memory_budget_bytes) +
              " bytes" +
              (retries > 0 ? " (+" + std::to_string(retries) + " retries)"
                           : std::string()) +
              "\n";
  }
  report += "  expected:  " + expected + "\n";
  report += "  actual:    " + actual + "\n";
  report += "  replay:    " + ReplayCommand() + "\n";
  if (!Term::Equal(query, original_query)) {
    report += "  shrunk from: " + original_query->ToString() + "\n";
  }
  return report;
}

std::string SoundnessReport::Summary() const {
  std::string summary =
      "soundness: " + std::to_string(trials) + " trials (" +
      std::to_string(evaluated) + " evaluated, " +
      std::to_string(gen_skipped) + " gen-skipped, " +
      std::to_string(eval_skipped) + " eval-skipped), " +
      std::to_string(config_runs) + " config cells, " +
      std::to_string(strictness) + " strictness diffs, " +
      std::to_string(degraded) + " degraded, " +
      (supervised ? std::to_string(retried) + " retried, " +
                        std::to_string(quarantined) + " quarantined, "
                  : std::string()) +
      std::to_string(cost_regressions) + " cost-regressions, " +
      std::to_string(failures.size()) + " divergences";
  summary += failures.empty() ? " -- CLEAN" : " -- UNSOUND";
  return summary;
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

/// What happened when one query ran through the pipeline under one config.
struct SoundnessHarness::RunOutcome {
  bool skipped = false;     // a step budget or deadline ran out; no verdict
  bool strictness = false;  // pipeline errored where the baseline did not
  bool degraded = false;    // optimizer stopped early; plan still checked
  bool retried = false;     // RetrySupervisor ran more than one attempt
  bool quarantined = false; // still degraded at the top of the escalation
  bool cost_regression = false;  // egraph cell costed more than greedy
  bool diverged = false;
  TermPtr optimized;
  std::string expected;
  std::string actual;
  std::vector<std::string> rule_trace;
};

SoundnessHarness::RunOutcome SoundnessHarness::RunConfig(
    const TermPtr& query, const Database& db, const PipelineConfig& config,
    uint64_t fault_stream) const {
  RunOutcome out;
  // Interning cells use a PRIVATE per-cell arena, not the shared global
  // one: with a memory budget in play, arena growth is charged to the
  // cell's governor, and charges against a shared arena would depend on
  // which trials warmed it first -- an execution-order (therefore --jobs)
  // dependence. A fresh arena makes every charge a pure function of the
  // cell. Results never differ (interning is semantics-free either way).
  std::optional<TermInterner> arena;
  if (config.interning) arena.emplace();
  ScopedInterning interning(config.interning ? &*arena : nullptr);
  TermPtr q = config.interning ? arena->Intern(query) : query;

  // Ground truth: the un-optimized query under the naive nested-loop
  // semantics. Fastpaths are part of what is being tested, so they stay
  // off here even when the config turns them on for the optimized side.
  // No governor and no faults: ground truth must not depend on wall clock
  // or on the injected chaos schedule.
  Evaluator baseline(
      &db, EvalOptions{.max_steps = options_.max_eval_steps,
                       .physical_fastpaths = false});
  auto expected = baseline.EvalObject(q);
  if (!expected.ok()) {
    out.skipped = true;
    return out;
  }

  // The optimizer section runs under this cell's own fault stream (the
  // spec was validated before the sweep started) and, when a deadline is
  // set, under a fresh per-stage Governor. A degraded pass is the whole
  // point of chaos testing: its best-so-far plan is still differentially
  // checked below, so an unsound degradation cannot hide as a skip.
  std::optional<FaultInjector> injector;
  if (!options_.fault_spec.empty()) {
    auto parsed = FaultInjector::Parse(options_.fault_spec, fault_stream);
    KOLA_CHECK_OK(parsed.status());
    injector.emplace(std::move(parsed).value());
  }
  ScopedFaultInjection faults(injector.has_value() ? &*injector : nullptr);
  std::optional<Governor> opt_governor;
  if (options_.deadline_ms > 0 || options_.memory_budget_bytes > 0) {
    Governor::Limits limits;
    limits.deadline_ms = options_.deadline_ms;
    limits.memory_budget_bytes = options_.memory_budget_bytes;
    opt_governor.emplace(limits);
  }

  PropertyStore properties = PropertyStore::Default();
  RewriterOptions engine_options;
  engine_options.memoize_fixpoint = config.fixpoint_memo;
  engine_options.use_rule_index = config.rule_index;
  engine_options.use_egraph = config.egraph;
  Optimizer optimizer(&properties, &db, engine_options);
  StatusOr<OptimizeResult> result = InternalError("unreached");
  if (options_.retries > 0 && options_.memory_budget_bytes > 0) {
    // Supervised path: memory-degraded passes re-run under escalated
    // budgets. The jitter key is the cell's fault stream -- already a pure
    // function of (seed, trial), so the escalation schedule is
    // jobs-invariant like everything else.
    RetryOptions retry;
    retry.memory_budget_bytes = options_.memory_budget_bytes;
    retry.deadline_ms = options_.deadline_ms;
    retry.max_attempts = options_.retries + 1;
    retry.seed = options_.seed;
    RetrySupervisor supervisor(&optimizer, retry);
    RetryOutcome supervised = supervisor.Optimize(q, fault_stream);
    out.retried = supervised.report.attempts > 1;
    out.quarantined = supervised.report.quarantined;
    if (supervised.ok()) {
      result = std::move(*supervised.result);
    } else {
      result = supervised.status;
    }
  } else {
    result = optimizer.Optimize(
        q, opt_governor.has_value() ? &*opt_governor : nullptr);
  }
  if (!result.ok()) {
    // Exhaustion and injected faults degrade inside Optimize; an error
    // escaping here means the pipeline was stricter than the baseline
    // (except for a residual exhaustion, which stays a skip).
    if (result.status().code() == StatusCode::kResourceExhausted) {
      out.skipped = true;
    } else {
      out.strictness = true;
    }
    return out;
  }
  out.degraded = result->degradation.degraded;

  // Egraph cells carry an extra promise beyond soundness: saturate-and-
  // extract ranks the greedy plan as a candidate, so the chosen plan must
  // never cost more than what the same cell produces with the e-graph off.
  // Only meaningful on unbudgeted, fault-free runs -- under chaos or a
  // budget the two pipelines can degrade at different points.
  if (config.egraph && options_.deadline_ms == 0 &&
      options_.memory_budget_bytes == 0 && options_.retries == 0 &&
      options_.fault_spec.empty()) {
    RewriterOptions greedy_options = engine_options;
    greedy_options.use_egraph = false;
    Optimizer greedy(&properties, &db, greedy_options);
    auto greedy_result = greedy.Optimize(q);
    if (greedy_result.ok()) {
      CostModel cost_model(&db);
      auto egraph_cost = cost_model.EstimateQueryCost(result->query);
      auto greedy_cost = cost_model.EstimateQueryCost(greedy_result->query);
      if (egraph_cost.ok() && greedy_cost.ok() &&
          egraph_cost.value() > greedy_cost.value()) {
        out.cost_regression = true;
      }
    }
  }

  std::vector<std::pair<TermPtr, std::vector<std::string>>> plans;
  std::vector<std::string> fired = result->trace.RuleIds();
  plans.emplace_back(result->rewritten, fired);
  if (!Term::Equal(result->query, result->rewritten)) {
    plans.emplace_back(result->query, fired);
  }
  // Planted rules model "this rule fired during optimization": one
  // application each, on top of the genuine pipeline output.
  for (const Rule& rule : options_.extra_rules) {
    RewriteStep step;
    auto after = optimizer.rewriter().ApplyOnce(rule, result->rewritten,
                                                &step);
    if (after.has_value()) {
      std::vector<std::string> trace = fired;
      trace.push_back(rule.id);
      plans.emplace_back(std::move(after).value(), std::move(trace));
    }
  }

  for (auto& [plan, trace] : plans) {
    // Every plan evaluation gets a fresh per-stage deadline: a pass that
    // degraded at the optimizer's deadline must still have its plan
    // checked, so the (sticky, possibly expired) optimizer governor is
    // never reused here. A deadline hit during this evaluation surfaces
    // as RESOURCE_EXHAUSTED and is classified as a skip below, exactly
    // like a step-budget skip.
    std::optional<Governor> eval_governor;
    if (options_.deadline_ms > 0 || options_.memory_budget_bytes > 0) {
      Governor::Limits limits;
      limits.deadline_ms = options_.deadline_ms;
      limits.memory_budget_bytes = options_.memory_budget_bytes;
      eval_governor.emplace(limits);
    }
    Evaluator eval(
        &db,
        EvalOptions{.max_steps = options_.max_eval_steps,
                    .physical_fastpaths = config.physical_fastpaths,
                    .governor = eval_governor.has_value() ? &*eval_governor
                                                          : nullptr});
    auto actual = eval.EvalObject(plan);
    if (!actual.ok()) {
      if (actual.status().code() == StatusCode::kResourceExhausted) {
        out.skipped = true;
      } else {
        out.strictness = true;
      }
      continue;
    }
    if (actual.value() == expected.value()) continue;
    out.diverged = true;
    out.optimized = plan;
    out.expected = expected.value().ToString();
    out.actual = actual.value().ToString();
    out.rule_trace = std::move(trace);
    return out;
  }
  return out;
}

Divergence SoundnessHarness::ShrinkDivergence(Divergence failure) const {
  RandomWorldOptions world;
  world.seed = failure.world_seed;
  world.scale = failure.world_scale;

  auto diverges = [&](const TermPtr& candidate,
                      const RandomWorldOptions& w,
                      RunOutcome* out) -> bool {
    auto db = BuildRandomWorld(w);
    // Replaying the divergence's own fault stream keeps the shrinker's
    // predicate aligned with the failure it is minimizing.
    *out = RunConfig(candidate, *db, failure.config, failure.fault_stream);
    return out->diverged;
  };
  auto adopt = [&failure](const TermPtr& candidate, RunOutcome out) {
    failure.query = candidate;
    failure.optimized = std::move(out.optimized);
    failure.expected = std::move(out.expected);
    failure.actual = std::move(out.actual);
    failure.rule_trace = std::move(out.rule_trace);
  };

  // Greedy first-improvement descent over local term reductions: adopt any
  // strictly smaller query that still diverges, until none does.
  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<TermPtr> candidates;
    CollectReductions(failure.query, &candidates);
    for (const TermPtr& candidate : candidates) {
      RunOutcome out;
      if (!diverges(candidate, world, &out)) continue;
      adopt(candidate, std::move(out));
      improved = true;
      break;
    }
  }

  // Then shrink the database: smallest scale (same seed) that still shows
  // the divergence. Scale 0 forces every extent empty.
  for (int scale = 0; scale < world.scale; ++scale) {
    RandomWorldOptions smaller = world;
    smaller.scale = scale;
    RunOutcome out;
    if (!diverges(failure.query, smaller, &out)) continue;
    world = smaller;
    adopt(failure.query, std::move(out));
    break;
  }
  failure.world_scale = world.scale;
  return failure;
}

StatusOr<std::optional<Divergence>> SoundnessHarness::CheckQuery(
    const TermPtr& query, const RandomWorldOptions& world,
    const PipelineConfig& config) {
  if (!options_.fault_spec.empty()) {
    KOLA_RETURN_IF_ERROR(
        FaultInjector::Parse(options_.fault_spec, options_.fault_seed)
            .status());
  }
  auto db = BuildRandomWorld(world);
  // Replay uses fault_seed directly as the stream -- the seed a reported
  // ReplayCommand() carries in --fault-seed IS the cell's stream.
  RunOutcome out = RunConfig(query, *db, config, options_.fault_seed);
  if (!out.diverged) return std::optional<Divergence>();
  Divergence failure;
  failure.query = query;
  failure.original_query = query;
  failure.optimized = std::move(out.optimized);
  failure.world_seed = world.seed;
  failure.world_scale = world.scale;
  failure.config = config;
  failure.planted = !options_.extra_rules.empty();
  failure.expected = std::move(out.expected);
  failure.actual = std::move(out.actual);
  failure.rule_trace = std::move(out.rule_trace);
  failure.deadline_ms = options_.deadline_ms;
  failure.memory_budget_bytes = options_.memory_budget_bytes;
  failure.retries = options_.retries;
  failure.fault_spec = options_.fault_spec;
  failure.fault_stream = options_.fault_seed;
  if (options_.shrink) failure = ShrinkDivergence(std::move(failure));
  return std::optional<Divergence>(std::move(failure));
}

/// Everything one trial produced, computed without touching shared state so
/// trials can run on any worker in any order. The fold back into the report
/// happens strictly in trial order.
struct SoundnessHarness::TrialOutcome {
  bool gen_skipped = false;
  bool eval_skipped = false;
  uint64_t world_seed = 0;
  int world_scale = 0;
  uint64_t fault_stream = 0;  // this trial's fault stream seed
  TermPtr query;
  std::vector<RunOutcome> cells;  // one per config, in options_.configs order
};

SoundnessHarness::TrialOutcome SoundnessHarness::RunTrial(int trial) const {
  TrialOutcome outcome;
  // Child(trial) is the whole parallel-determinism story: trial K's
  // randomness (world seed, query) depends only on (options.seed, K), so a
  // reported repro seed stays valid whether the sweep that found it ran
  // with --jobs 1 or --jobs 32, and --replay never needs to re-run the
  // preceding K-1 trials.
  Rng trial_rng = Rng(options_.seed).Child(static_cast<uint64_t>(trial));
  uint64_t world_seed = static_cast<uint64_t>(
      trial_rng.Uniform(0, std::numeric_limits<int64_t>::max()));
  RandomWorldOptions world = RandomWorldOptions::FromSeed(world_seed);
  outcome.world_seed = world.seed;
  outcome.world_scale = world.scale;
  // The trial's fault stream is a child of fault_seed alone (same
  // parallel-determinism contract as the query randomness above), so a
  // chaos sweep's fault schedule never depends on jobs or trial order.
  outcome.fault_stream =
      Rng(options_.fault_seed).Child(static_cast<uint64_t>(trial)).Next();
  auto db = BuildRandomWorld(world);

  SchemaTypes schema = SchemaTypes::CarWorld();
  Rng query_rng = trial_rng.Fork();
  QueryGenerator generator(&schema, db.get(), &query_rng,
                           QueryGenOptions{.max_depth = options_.gen_depth});
  auto query = generator.RandomQuery();
  if (!query.ok()) {
    outcome.gen_skipped = true;
    return outcome;
  }
  outcome.query = query.value();

  // One cheap un-instrumented probe so trials whose baseline cannot
  // evaluate (runtime type error, step budget) are classified once
  // instead of once per config.
  Evaluator probe(db.get(),
                  EvalOptions{.max_steps = options_.max_eval_steps,
                              .physical_fastpaths = false});
  if (!probe.EvalObject(query.value()).ok()) {
    outcome.eval_skipped = true;
    return outcome;
  }

  outcome.cells.reserve(options_.configs.size());
  for (const PipelineConfig& config : options_.configs) {
    outcome.cells.push_back(
        RunConfig(query.value(), *db, config, outcome.fault_stream));
  }
  return outcome;
}

StatusOr<SoundnessReport> SoundnessHarness::Run() {
  // Surface a malformed fault spec once, up front, instead of aborting
  // inside a worker mid-sweep.
  if (!options_.fault_spec.empty()) {
    KOLA_RETURN_IF_ERROR(
        FaultInjector::Parse(options_.fault_spec, options_.fault_seed)
            .status());
  }
  SoundnessReport report;
  report.supervised =
      options_.retries > 0 && options_.memory_budget_bytes > 0;
  const int jobs = std::max(1, options_.jobs);
  // Trials are dispatched in chunks; after each chunk the outcomes fold
  // into the report in trial order, replicating the serial early-stop at
  // max_failures exactly. The chunk size only bounds how much speculative
  // work can be discarded past the cutoff -- it never shows in the report,
  // so jobs-dependent chunking is safe.
  const int chunk = std::max(8, jobs * 8);
  std::vector<TrialOutcome> outcomes;
  bool stopped = false;

  for (int start = 0; start < options_.trials && !stopped; start += chunk) {
    const int n = std::min(chunk, options_.trials - start);
    outcomes.assign(static_cast<size_t>(n), TrialOutcome{});
    KOLA_RETURN_IF_ERROR(
        ParallelFor(jobs, static_cast<size_t>(n), [&](size_t i) {
          outcomes[i] = RunTrial(start + static_cast<int>(i));
        }));

    for (int i = 0; i < n && !stopped; ++i) {
      if (static_cast<int>(report.failures.size()) >=
          options_.max_failures) {
        stopped = true;
        break;
      }
      TrialOutcome& outcome = outcomes[static_cast<size_t>(i)];
      ++report.trials;
      if (outcome.gen_skipped) {
        ++report.gen_skipped;
        continue;
      }
      if (outcome.eval_skipped) {
        ++report.eval_skipped;
        continue;
      }
      ++report.evaluated;

      for (size_t c = 0; c < outcome.cells.size(); ++c) {
        ++report.config_runs;
        RunOutcome& out = outcome.cells[c];
        if (out.strictness) ++report.strictness;
        if (out.degraded) ++report.degraded;
        if (out.retried) ++report.retried;
        if (out.quarantined) ++report.quarantined;
        if (out.cost_regression) ++report.cost_regressions;
        if (!out.diverged) continue;
        Divergence failure;
        failure.query = outcome.query;
        failure.original_query = outcome.query;
        failure.optimized = std::move(out.optimized);
        failure.world_seed = outcome.world_seed;
        failure.world_scale = outcome.world_scale;
        failure.config = options_.configs[c];
        failure.planted = !options_.extra_rules.empty();
        failure.expected = std::move(out.expected);
        failure.actual = std::move(out.actual);
        failure.rule_trace = std::move(out.rule_trace);
        failure.deadline_ms = options_.deadline_ms;
        failure.memory_budget_bytes = options_.memory_budget_bytes;
        failure.retries = options_.retries;
        failure.fault_spec = options_.fault_spec;
        failure.fault_stream = outcome.fault_stream;
        if (options_.shrink) failure = ShrinkDivergence(std::move(failure));
        report.failures.push_back(std::move(failure));
        if (static_cast<int>(report.failures.size()) >=
            options_.max_failures) {
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace kola
