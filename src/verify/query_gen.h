#ifndef KOLA_VERIFY_QUERY_GEN_H_
#define KOLA_VERIFY_QUERY_GEN_H_

#include "common/random.h"
#include "common/statusor.h"
#include "rewrite/generate.h"
#include "rewrite/types.h"
#include "term/term.h"
#include "values/database.h"

namespace kola {

/// Tunables for whole-query generation.
struct QueryGenOptions {
  /// Depth budget handed to the underlying TermGenerator for the function
  /// and predicate pieces of each query.
  int max_depth = 3;
};

/// Generates random well-typed object-sorted KOLA *queries* -- full
/// `fn ! extent` applications, not just rule instantiations -- for the
/// end-to-end soundness harness. Where TermGenerator (rewrite/generate.h)
/// instantiates a single metavariable at an inferred type, this generator
/// produces query shapes the optimizer pipeline actually has opinions
/// about: filter/maps, eq- and in-keyed joins (the physical fastpath
/// shapes), groupings, fusable double loops, and the Figure 7 hidden-join
/// family.
///
/// Every query draws its extents from the database, so it is evaluable
/// against that database by construction (modulo runtime type errors the
/// harness classifies separately).
class QueryGenerator {
 public:
  /// All pointers must outlive the generator. `schema` must type the
  /// database's extents (e.g. SchemaTypes::CarWorld() for BuildCarWorld or
  /// BuildRandomWorld databases).
  QueryGenerator(const SchemaTypes* schema, const Database* db, Rng* rng,
                 QueryGenOptions options = QueryGenOptions())
      : schema_(schema), db_(db), rng_(rng), options_(options),
        term_gen_(schema, db, rng,
                  GenOptions{.max_depth = options.max_depth}) {}

  /// A random ground object-sorted query. NOT_FOUND when the drawn shape
  /// cannot be filled at the drawn types (the harness counts such draws as
  /// skipped and moves on).
  StatusOr<TermPtr> RandomQuery();

 private:
  /// A random extent name together with its element type. FAILED_PRECONDITION
  /// when the database has no extent the schema can type.
  StatusOr<std::pair<std::string, TypePtr>> RandomExtent();

  StatusOr<TermPtr> FilterMap();       // iterate(p, f) ! E
  StatusOr<TermPtr> KeyedJoin();       // join(eq/in @ (f x g), h) ! [E1, E2]
  StatusOr<TermPtr> PredicateJoin();   // join(p, h) ! [E1, E2]
  StatusOr<TermPtr> Grouping();        // nest(pi1, pi2) over derived inputs
  StatusOr<TermPtr> DoubleIterate();   // iterate o iterate (fusion bait)
  StatusOr<TermPtr> HiddenJoin();      // MakeHiddenJoinQuery(1..2)

  const SchemaTypes* schema_;
  const Database* db_;
  Rng* rng_;
  QueryGenOptions options_;
  TermGenerator term_gen_;
};

}  // namespace kola

#endif  // KOLA_VERIFY_QUERY_GEN_H_
