#ifndef KOLA_AQUA_PARSER_H_
#define KOLA_AQUA_PARSER_H_

#include <string_view>

#include "aqua/expr.h"
#include "common/statusor.h"

namespace kola {
namespace aqua {

/// Parses AQUA concrete syntax:
///
///   expr    := orE
///   orE     := andE ('or' andE)*
///   andE    := notE ('and' notE)*
///   notE    := 'not' notE | cmp
///   cmp     := path (('==' '!=' '<' '<=' '>' '>=' 'in') path)?
///   path    := primary ('.' IDENT)*
///   primary := INT | STRING | '{' '}' | IDENT
///           | '[' expr ',' expr ']' | '(' expr ')'
///           | 'app' '(' lambda ')' '(' expr ')'
///           | 'sel' '(' lambda ')' '(' expr ')'
///           | 'flatten' '(' expr ')'
///           | 'join' '(' lambda ',' lambda ')' '(' expr ',' expr ')'
///           | 'if' expr 'then' expr 'else' expr
///   lambda  := '\' IDENT IDENT? '.' expr
///
/// An identifier is a variable reference when bound by an enclosing
/// lambda, otherwise a collection name. Example (the paper's A4):
///
///   app(\p. [p, sel(\c. p.age > 25)(p.child)])(P)
StatusOr<ExprPtr> ParseAqua(std::string_view text);

}  // namespace aqua
}  // namespace kola

#endif  // KOLA_AQUA_PARSER_H_
