#include "aqua/expr.h"

#include <map>
#include <sstream>

#include "common/macros.h"

namespace kola {
namespace aqua {

const char* ExprKindToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kVar: return "var";
    case ExprKind::kConst: return "const";
    case ExprKind::kCollection: return "collection";
    case ExprKind::kTuple: return "tuple";
    case ExprKind::kFunCall: return "funcall";
    case ExprKind::kBinOp: return "binop";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kNot: return "not";
    case ExprKind::kLambda: return "lambda";
    case ExprKind::kApp: return "app";
    case ExprKind::kSel: return "sel";
    case ExprKind::kFlatten: return "flatten";
    case ExprKind::kJoin: return "join";
    case ExprKind::kIfThenElse: return "if";
  }
  return "unknown";
}

const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "==";
    case BinOp::kNeq: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLeq: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGeq: return ">=";
    case BinOp::kIn: return "in";
  }
  return "?";
}

ExprPtr Expr::Make(ExprKind kind, std::string name, Value literal, BinOp op,
                   std::vector<std::string> params,
                   std::vector<ExprPtr> children) {
  auto expr = std::shared_ptr<Expr>(new Expr());
  expr->kind_ = kind;
  expr->name_ = std::move(name);
  expr->literal_ = std::move(literal);
  expr->op_ = op;
  expr->params_ = std::move(params);
  expr->children_ = std::move(children);
  size_t nodes = 1;
  for (const ExprPtr& child : expr->children_) {
    KOLA_CHECK(child != nullptr);
    nodes += child->node_count();
  }
  expr->node_count_ = nodes;
  return expr;
}

ExprPtr Expr::Var(std::string name) {
  return Make(ExprKind::kVar, std::move(name), Value::Null(), BinOp::kEq, {},
              {});
}

ExprPtr Expr::Const(Value value) {
  return Make(ExprKind::kConst, "", std::move(value), BinOp::kEq, {}, {});
}

ExprPtr Expr::Collection(std::string name) {
  return Make(ExprKind::kCollection, std::move(name), Value::Null(),
              BinOp::kEq, {}, {});
}

ExprPtr Expr::Tuple(ExprPtr first, ExprPtr second) {
  return Make(ExprKind::kTuple, "", Value::Null(), BinOp::kEq, {},
              {std::move(first), std::move(second)});
}

ExprPtr Expr::FunCall(std::string function, ExprPtr argument) {
  return Make(ExprKind::kFunCall, std::move(function), Value::Null(),
              BinOp::kEq, {}, {std::move(argument)});
}

ExprPtr Expr::MakeBinOp(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  return Make(ExprKind::kBinOp, "", Value::Null(), op,
              {}, {std::move(lhs), std::move(rhs)});
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  return Make(ExprKind::kAnd, "", Value::Null(), BinOp::kEq, {},
              {std::move(lhs), std::move(rhs)});
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  return Make(ExprKind::kOr, "", Value::Null(), BinOp::kEq, {},
              {std::move(lhs), std::move(rhs)});
}

ExprPtr Expr::Not(ExprPtr operand) {
  return Make(ExprKind::kNot, "", Value::Null(), BinOp::kEq, {},
              {std::move(operand)});
}

ExprPtr Expr::Lambda(std::vector<std::string> params, ExprPtr body) {
  KOLA_CHECK(!params.empty() && params.size() <= 2);
  return Make(ExprKind::kLambda, "", Value::Null(), BinOp::kEq,
              std::move(params), {std::move(body)});
}

ExprPtr Expr::App(ExprPtr lambda, ExprPtr set) {
  return Make(ExprKind::kApp, "", Value::Null(), BinOp::kEq, {},
              {std::move(lambda), std::move(set)});
}

ExprPtr Expr::Sel(ExprPtr lambda, ExprPtr set) {
  return Make(ExprKind::kSel, "", Value::Null(), BinOp::kEq, {},
              {std::move(lambda), std::move(set)});
}

ExprPtr Expr::Flatten(ExprPtr set) {
  return Make(ExprKind::kFlatten, "", Value::Null(), BinOp::kEq, {},
              {std::move(set)});
}

ExprPtr Expr::Join(ExprPtr pred_lambda, ExprPtr fn_lambda, ExprPtr lhs,
                   ExprPtr rhs) {
  return Make(ExprKind::kJoin, "", Value::Null(), BinOp::kEq, {},
              {std::move(pred_lambda), std::move(fn_lambda), std::move(lhs),
               std::move(rhs)});
}

ExprPtr Expr::IfThenElse(ExprPtr condition, ExprPtr then_branch,
                         ExprPtr else_branch) {
  return Make(ExprKind::kIfThenElse, "", Value::Null(), BinOp::kEq, {},
              {std::move(condition), std::move(then_branch),
               std::move(else_branch)});
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kVar:
      os << name_;
      break;
    case ExprKind::kConst:
      os << literal_.ToString();
      break;
    case ExprKind::kCollection:
      os << name_;
      break;
    case ExprKind::kTuple:
      os << '[' << children_[0]->ToString() << ", "
         << children_[1]->ToString() << ']';
      break;
    case ExprKind::kFunCall:
      os << children_[0]->ToString() << '.' << name_;
      break;
    case ExprKind::kBinOp:
      os << '(' << children_[0]->ToString() << ' ' << BinOpToString(op_)
         << ' ' << children_[1]->ToString() << ')';
      break;
    case ExprKind::kAnd:
      os << '(' << children_[0]->ToString() << " and "
         << children_[1]->ToString() << ')';
      break;
    case ExprKind::kOr:
      os << '(' << children_[0]->ToString() << " or "
         << children_[1]->ToString() << ')';
      break;
    case ExprKind::kNot:
      os << "not " << children_[0]->ToString();
      break;
    case ExprKind::kLambda: {
      os << '\\';
      for (size_t i = 0; i < params_.size(); ++i) {
        if (i > 0) os << ' ';
        os << params_[i];
      }
      os << ". " << children_[0]->ToString();
      break;
    }
    case ExprKind::kApp:
      os << "app(" << children_[0]->ToString() << ")("
         << children_[1]->ToString() << ')';
      break;
    case ExprKind::kSel:
      os << "sel(" << children_[0]->ToString() << ")("
         << children_[1]->ToString() << ')';
      break;
    case ExprKind::kFlatten:
      os << "flatten(" << children_[0]->ToString() << ')';
      break;
    case ExprKind::kJoin:
      os << "join(" << children_[0]->ToString() << ", "
         << children_[1]->ToString() << ")(" << children_[2]->ToString()
         << ", " << children_[3]->ToString() << ')';
      break;
    case ExprKind::kIfThenElse:
      os << "if " << children_[0]->ToString() << " then "
         << children_[1]->ToString() << " else "
         << children_[2]->ToString();
      break;
  }
  return os.str();
}

namespace {

void CollectFreeVars(const ExprPtr& expr, std::set<std::string>* bound,
                     std::set<std::string>* free) {
  switch (expr->kind()) {
    case ExprKind::kVar:
      if (bound->count(expr->name()) == 0) free->insert(expr->name());
      return;
    case ExprKind::kLambda: {
      std::vector<std::string> added;
      for (const std::string& p : expr->params()) {
        if (bound->insert(p).second) added.push_back(p);
      }
      CollectFreeVars(expr->child(0), bound, free);
      for (const std::string& p : added) bound->erase(p);
      return;
    }
    default:
      for (const ExprPtr& child : expr->children()) {
        CollectFreeVars(child, bound, free);
      }
  }
}

/// Picks a name not occurring in `avoid`.
std::string FreshName(const std::string& base,
                      const std::set<std::string>& avoid) {
  std::string candidate = base + "'";
  while (avoid.count(candidate) > 0) candidate += "'";
  return candidate;
}

}  // namespace

std::set<std::string> FreeVars(const ExprPtr& expr) {
  std::set<std::string> bound;
  std::set<std::string> free;
  CollectFreeVars(expr, &bound, &free);
  return free;
}

ExprPtr SubstituteVar(const ExprPtr& expr, const std::string& var,
                      const ExprPtr& replacement) {
  switch (expr->kind()) {
    case ExprKind::kVar:
      return expr->name() == var ? replacement : expr;
    case ExprKind::kConst:
    case ExprKind::kCollection:
      return expr;
    case ExprKind::kLambda: {
      // Shadowed: substitution stops here.
      for (const std::string& p : expr->params()) {
        if (p == var) return expr;
      }
      // Capture: rename the offending binder first.
      std::set<std::string> replacement_free = FreeVars(replacement);
      std::vector<std::string> params = expr->params();
      ExprPtr body = expr->child(0);
      for (std::string& p : params) {
        if (replacement_free.count(p) == 0) continue;
        std::set<std::string> avoid = replacement_free;
        for (const std::string& fv : FreeVars(body)) avoid.insert(fv);
        std::string fresh = FreshName(p, avoid);
        body = SubstituteVar(body, p, Expr::Var(fresh));
        p = fresh;
      }
      return Expr::Lambda(std::move(params),
                          SubstituteVar(body, var, replacement));
    }
    default: {
      bool changed = false;
      std::vector<ExprPtr> children;
      children.reserve(expr->children().size());
      for (const ExprPtr& child : expr->children()) {
        ExprPtr replaced = SubstituteVar(child, var, replacement);
        changed = changed || replaced.get() != child.get();
        children.push_back(std::move(replaced));
      }
      if (!changed) return expr;
      // Rebuild with the same head.
      switch (expr->kind()) {
        case ExprKind::kTuple:
          return Expr::Tuple(children[0], children[1]);
        case ExprKind::kFunCall:
          return Expr::FunCall(expr->name(), children[0]);
        case ExprKind::kBinOp:
          return Expr::MakeBinOp(expr->op(), children[0], children[1]);
        case ExprKind::kAnd:
          return Expr::And(children[0], children[1]);
        case ExprKind::kOr:
          return Expr::Or(children[0], children[1]);
        case ExprKind::kNot:
          return Expr::Not(children[0]);
        case ExprKind::kApp:
          return Expr::App(children[0], children[1]);
        case ExprKind::kSel:
          return Expr::Sel(children[0], children[1]);
        case ExprKind::kFlatten:
          return Expr::Flatten(children[0]);
        case ExprKind::kJoin:
          return Expr::Join(children[0], children[1], children[2],
                            children[3]);
        case ExprKind::kIfThenElse:
          return Expr::IfThenElse(children[0], children[1], children[2]);
        default:
          KOLA_CHECK(false);
          return expr;
      }
    }
  }
}

namespace {

bool AlphaEqualImpl(const ExprPtr& a, const ExprPtr& b,
                    std::map<std::string, std::string>* a_to_b) {
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::kVar: {
      auto it = a_to_b->find(a->name());
      if (it != a_to_b->end()) return it->second == b->name();
      return a->name() == b->name();
    }
    case ExprKind::kConst:
      return Value::Compare(a->literal(), b->literal()) == 0;
    case ExprKind::kCollection:
      return a->name() == b->name();
    case ExprKind::kFunCall:
      return a->name() == b->name() &&
             AlphaEqualImpl(a->child(0), b->child(0), a_to_b);
    case ExprKind::kBinOp:
      if (a->op() != b->op()) return false;
      break;
    case ExprKind::kLambda: {
      if (a->params().size() != b->params().size()) return false;
      std::map<std::string, std::string> saved = *a_to_b;
      for (size_t i = 0; i < a->params().size(); ++i) {
        (*a_to_b)[a->params()[i]] = b->params()[i];
      }
      bool equal = AlphaEqualImpl(a->child(0), b->child(0), a_to_b);
      *a_to_b = std::move(saved);
      return equal;
    }
    default:
      break;
  }
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!AlphaEqualImpl(a->child(i), b->child(i), a_to_b)) return false;
  }
  return true;
}

}  // namespace

bool AlphaEqual(const ExprPtr& a, const ExprPtr& b) {
  std::map<std::string, std::string> renaming;
  return AlphaEqualImpl(a, b, &renaming);
}

}  // namespace aqua
}  // namespace kola
