#include "aqua/eval.h"

#include <vector>

#include "common/macros.h"

namespace kola {
namespace aqua {

namespace {

StatusOr<int> OrderedCompare(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    return a.int_value() == b.int_value() ? 0
           : a.int_value() < b.int_value() ? -1
                                           : 1;
  }
  if (a.is_string() && b.is_string()) {
    int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return TypeError("ordering on non-comparable values " + a.ToString() +
                   " and " + b.ToString());
}

}  // namespace

Status AquaEvaluator::Tick() {
  if (++steps_ > max_steps_) {
    return ResourceExhaustedError("AQUA evaluation exceeded step budget");
  }
  return Status::OK();
}

StatusOr<Value> AquaEvaluator::Eval(const ExprPtr& expr, const Env& env) {
  KOLA_RETURN_IF_ERROR(Tick());
  switch (expr->kind()) {
    case ExprKind::kVar: {
      auto it = env.find(expr->name());
      if (it == env.end()) {
        return FailedPreconditionError("unbound variable " + expr->name());
      }
      return it->second;
    }
    case ExprKind::kConst:
      return expr->literal();
    case ExprKind::kCollection:
      return db_->Extent(expr->name());
    case ExprKind::kTuple: {
      KOLA_ASSIGN_OR_RETURN(Value a, Eval(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(Value b, Eval(expr->child(1), env));
      return Value::MakePair(std::move(a), std::move(b));
    }
    case ExprKind::kFunCall: {
      KOLA_ASSIGN_OR_RETURN(Value arg, Eval(expr->child(0), env));
      return db_->CallFunction(expr->name(), arg);
    }
    case ExprKind::kBinOp: {
      KOLA_ASSIGN_OR_RETURN(Value a, Eval(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(Value b, Eval(expr->child(1), env));
      switch (expr->op()) {
        case BinOp::kEq:
          return Value::Bool(Value::Compare(a, b) == 0);
        case BinOp::kNeq:
          return Value::Bool(Value::Compare(a, b) != 0);
        case BinOp::kIn: {
          if (!b.is_set()) {
            return TypeError("'in' expects a set, got " + b.ToString());
          }
          return Value::Bool(b.SetContains(a));
        }
        default: {
          KOLA_ASSIGN_OR_RETURN(int c, OrderedCompare(a, b));
          switch (expr->op()) {
            case BinOp::kLt: return Value::Bool(c < 0);
            case BinOp::kLeq: return Value::Bool(c <= 0);
            case BinOp::kGt: return Value::Bool(c > 0);
            default: return Value::Bool(c >= 0);
          }
        }
      }
    }
    case ExprKind::kAnd: {
      KOLA_ASSIGN_OR_RETURN(Value a, Eval(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(bool lhs, a.AsBool());
      if (!lhs) return Value::Bool(false);
      KOLA_ASSIGN_OR_RETURN(Value b, Eval(expr->child(1), env));
      KOLA_ASSIGN_OR_RETURN(bool rhs, b.AsBool());
      return Value::Bool(rhs);
    }
    case ExprKind::kOr: {
      KOLA_ASSIGN_OR_RETURN(Value a, Eval(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(bool lhs, a.AsBool());
      if (lhs) return Value::Bool(true);
      KOLA_ASSIGN_OR_RETURN(Value b, Eval(expr->child(1), env));
      KOLA_ASSIGN_OR_RETURN(bool rhs, b.AsBool());
      return Value::Bool(rhs);
    }
    case ExprKind::kNot: {
      KOLA_ASSIGN_OR_RETURN(Value a, Eval(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(bool b, a.AsBool());
      return Value::Bool(!b);
    }
    case ExprKind::kLambda:
      return FailedPreconditionError(
          "lambda is not a first-class value in AQUA");
    case ExprKind::kApp:
    case ExprKind::kSel: {
      const ExprPtr& lambda = expr->child(0);
      if (lambda->kind() != ExprKind::kLambda ||
          lambda->params().size() != 1) {
        return TypeError("app/sel expects a unary lambda");
      }
      KOLA_ASSIGN_OR_RETURN(Value set, Eval(expr->child(1), env));
      if (!set.is_set()) {
        return TypeError("app/sel expects a set, got " + set.ToString());
      }
      std::vector<Value> out;
      Env inner = env;
      for (const Value& element : set.elements()) {
        inner[lambda->params()[0]] = element;
        KOLA_ASSIGN_OR_RETURN(Value result, Eval(lambda->child(0), inner));
        if (expr->kind() == ExprKind::kApp) {
          out.push_back(std::move(result));
        } else {
          KOLA_ASSIGN_OR_RETURN(bool keep, result.AsBool());
          if (keep) out.push_back(element);
        }
      }
      return Value::MakeSet(std::move(out));
    }
    case ExprKind::kFlatten: {
      KOLA_ASSIGN_OR_RETURN(Value set, Eval(expr->child(0), env));
      if (!set.is_set()) {
        return TypeError("flatten expects a set, got " + set.ToString());
      }
      std::vector<Value> out;
      for (const Value& inner : set.elements()) {
        if (!inner.is_set()) {
          return TypeError("flatten expects set elements, got " +
                           inner.ToString());
        }
        for (const Value& x : inner.elements()) out.push_back(x);
      }
      return Value::MakeSet(std::move(out));
    }
    case ExprKind::kJoin: {
      const ExprPtr& pred = expr->child(0);
      const ExprPtr& fn = expr->child(1);
      if (pred->kind() != ExprKind::kLambda ||
          pred->params().size() != 2 || fn->kind() != ExprKind::kLambda ||
          fn->params().size() != 2) {
        return TypeError("join expects binary lambdas");
      }
      KOLA_ASSIGN_OR_RETURN(Value lhs, Eval(expr->child(2), env));
      KOLA_ASSIGN_OR_RETURN(Value rhs, Eval(expr->child(3), env));
      if (!lhs.is_set() || !rhs.is_set()) {
        return TypeError("join expects sets");
      }
      std::vector<Value> out;
      Env inner = env;
      for (const Value& a : lhs.elements()) {
        for (const Value& b : rhs.elements()) {
          KOLA_RETURN_IF_ERROR(Tick());
          inner[pred->params()[0]] = a;
          inner[pred->params()[1]] = b;
          KOLA_ASSIGN_OR_RETURN(Value keep_v, Eval(pred->child(0), inner));
          KOLA_ASSIGN_OR_RETURN(bool keep, keep_v.AsBool());
          if (!keep) continue;
          inner[fn->params()[0]] = a;
          inner[fn->params()[1]] = b;
          KOLA_ASSIGN_OR_RETURN(Value v, Eval(fn->child(0), inner));
          out.push_back(std::move(v));
        }
      }
      return Value::MakeSet(std::move(out));
    }
    case ExprKind::kIfThenElse: {
      KOLA_ASSIGN_OR_RETURN(Value cond, Eval(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(bool c, cond.AsBool());
      return Eval(expr->child(c ? 1 : 2), env);
    }
  }
  return InternalError("unhandled AQUA expression kind");
}

}  // namespace aqua
}  // namespace kola
