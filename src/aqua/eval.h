#ifndef KOLA_AQUA_EVAL_H_
#define KOLA_AQUA_EVAL_H_

#include <cstdint>
#include <map>
#include <string>

#include "aqua/expr.h"
#include "common/statusor.h"
#include "values/database.h"

namespace kola {
namespace aqua {

/// Variable environment: name -> value.
using Env = std::map<std::string, Value>;

/// Direct interpreter for AQUA expressions. Used to cross-check the
/// AQUA->KOLA translator: for every query, evaluating the AQUA form and
/// evaluating its KOLA translation must agree.
class AquaEvaluator {
 public:
  explicit AquaEvaluator(const Database* db, int64_t max_steps = 50'000'000)
      : db_(db), max_steps_(max_steps) {}

  StatusOr<Value> Eval(const ExprPtr& expr, const Env& env);

  /// Evaluates a closed query.
  StatusOr<Value> EvalQuery(const ExprPtr& expr) { return Eval(expr, {}); }

 private:
  Status Tick();

  const Database* db_;
  int64_t max_steps_;
  int64_t steps_ = 0;
};

}  // namespace aqua
}  // namespace kola

#endif  // KOLA_AQUA_EVAL_H_
