#ifndef KOLA_AQUA_EXPR_H_
#define KOLA_AQUA_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "values/value.h"

namespace kola {
namespace aqua {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// The variable-based comparator algebra (AQUA, [25] in the paper). This is
/// the representation the paper argues AGAINST for rule matching: anonymous
/// functions are lambda-expressions, so transformations need capture-aware
/// substitution (body routines) and free-variable analysis (head routines).
enum class ExprKind {
  kVar,         // bound variable reference
  kConst,       // literal Value
  kCollection,  // named extent (P, V, ...)
  kTuple,       // [e1, e2]
  kFunCall,     // unary schema function applied via a path: e.age
  kBinOp,       // ==  !=  <  <=  >  >=  in
  kAnd,         // e1 and e2
  kOr,          // e1 or e2
  kNot,         // not e
  kLambda,      // \x. body   or   \x y. body (binary, for join)
  kApp,         // app(lambda)(set)
  kSel,         // sel(lambda)(set)
  kFlatten,     // flatten(set-of-sets)
  kJoin,        // join(lambda2-pred, lambda2-fn)(A, B)
  kIfThenElse,  // if c then e1 else e2
};

const char* ExprKindToString(ExprKind kind);

/// Comparison / membership operators for kBinOp.
enum class BinOp { kEq, kNeq, kLt, kLeq, kGt, kGeq, kIn };

const char* BinOpToString(BinOp op);

/// An immutable AQUA expression node.
class Expr {
 public:
  static ExprPtr Var(std::string name);
  static ExprPtr Const(Value value);
  static ExprPtr Collection(std::string name);
  static ExprPtr Tuple(ExprPtr first, ExprPtr second);
  static ExprPtr FunCall(std::string function, ExprPtr argument);
  static ExprPtr MakeBinOp(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Lambda(std::vector<std::string> params, ExprPtr body);
  static ExprPtr App(ExprPtr lambda, ExprPtr set);
  static ExprPtr Sel(ExprPtr lambda, ExprPtr set);
  static ExprPtr Flatten(ExprPtr set);
  static ExprPtr Join(ExprPtr pred_lambda, ExprPtr fn_lambda, ExprPtr lhs,
                      ExprPtr rhs);
  static ExprPtr IfThenElse(ExprPtr condition, ExprPtr then_branch,
                            ExprPtr else_branch);

  ExprKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const Value& literal() const { return literal_; }
  BinOp op() const { return op_; }
  const std::vector<std::string>& params() const { return params_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  /// Number of AST nodes (the paper's size metric; lambda binders count as
  /// part of their node).
  size_t node_count() const { return node_count_; }

  std::string ToString() const;

 private:
  Expr() = default;
  static ExprPtr Make(ExprKind kind, std::string name, Value literal,
                      BinOp op, std::vector<std::string> params,
                      std::vector<ExprPtr> children);

  ExprKind kind_ = ExprKind::kConst;
  std::string name_;
  Value literal_;
  BinOp op_ = BinOp::kEq;
  std::vector<std::string> params_;
  std::vector<ExprPtr> children_;
  size_t node_count_ = 1;
};

/// Free variables of `expr`.
std::set<std::string> FreeVars(const ExprPtr& expr);

/// Capture-avoiding substitution expr[var := replacement]. Bound variables
/// that would capture free variables of `replacement` are renamed. This is
/// exactly the "additional machinery" Section 2.1 says variable-based rules
/// require; the baseline transformer instruments it.
ExprPtr SubstituteVar(const ExprPtr& expr, const std::string& var,
                      const ExprPtr& replacement);

/// Alpha-equivalence (equality modulo bound-variable renaming).
bool AlphaEqual(const ExprPtr& a, const ExprPtr& b);

}  // namespace aqua
}  // namespace kola

#endif  // KOLA_AQUA_EXPR_H_
