#include "aqua/transform.h"

#include "aqua/parser.h"
#include "common/macros.h"

namespace kola {
namespace aqua {

namespace {

Status NoMatch(const char* which) {
  return FailedPreconditionError(std::string(which) +
                                 ": expression does not match");
}

/// True when `expr` is app/sel over a unary lambda.
bool IsUnaryLoop(const ExprPtr& expr, ExprKind kind) {
  return expr->kind() == kind &&
         expr->child(0)->kind() == ExprKind::kLambda &&
         expr->child(0)->params().size() == 1;
}

/// True when `expr` is a pure path rooted at variable `var`:
/// var.f1.f2...fn. Counts examined nodes into head_ops.
bool IsPathOf(const ExprPtr& expr, const std::string& var, int* head_ops) {
  ++*head_ops;
  if (expr->kind() == ExprKind::kVar) return expr->name() == var;
  if (expr->kind() == ExprKind::kFunCall) {
    return IsPathOf(expr->child(0), var, head_ops);
  }
  return false;
}

}  // namespace

StatusOr<ExprPtr> FuseAppApp(const ExprPtr& expr,
                             AquaTransformStats* stats) {
  *stats = AquaTransformStats{};
  // Shape check (cheap "unification-like" part).
  if (!IsUnaryLoop(expr, ExprKind::kApp)) return NoMatch("FuseAppApp");
  const ExprPtr& outer_lambda = expr->child(0);
  const ExprPtr& inner = expr->child(1);
  if (!IsUnaryLoop(inner, ExprKind::kApp)) return NoMatch("FuseAppApp");
  const ExprPtr& inner_lambda = inner->child(0);
  const ExprPtr& source = inner->child(1);

  // Body routine: capture-avoiding substitution of the inner body for the
  // outer variable. Every node of the rewritten body is "built" by code.
  const std::string& outer_var = outer_lambda->params()[0];
  ExprPtr fused_body =
      SubstituteVar(outer_lambda->child(0), outer_var,
                    inner_lambda->child(0));
  stats->body_ops += static_cast<int>(fused_body->node_count());

  ExprPtr result = Expr::App(
      Expr::Lambda({inner_lambda->params()[0]}, std::move(fused_body)),
      source);
  stats->body_ops += 2;  // the rebuilt lambda and app nodes
  stats->applied = true;
  return result;
}

StatusOr<ExprPtr> SwapProjectSelect(const ExprPtr& expr,
                                    AquaTransformStats* stats) {
  *stats = AquaTransformStats{};
  if (!IsUnaryLoop(expr, ExprKind::kApp)) return NoMatch("SwapProjectSelect");
  const ExprPtr& proj_lambda = expr->child(0);
  const ExprPtr& inner = expr->child(1);
  if (!IsUnaryLoop(inner, ExprKind::kSel)) {
    return NoMatch("SwapProjectSelect");
  }
  const ExprPtr& sel_lambda = inner->child(0);
  const ExprPtr& source = inner->child(1);

  // Head routine part 1: the selection predicate must be PATH'(p) > k with
  // a constant right-hand side.
  const ExprPtr& predicate = sel_lambda->child(0);
  ++stats->head_ops;
  if (predicate->kind() != ExprKind::kBinOp) {
    return NoMatch("SwapProjectSelect");
  }
  const ExprPtr& pred_path = predicate->child(0);
  const ExprPtr& pred_const = predicate->child(1);
  ++stats->head_ops;
  if (pred_const->kind() != ExprKind::kConst) {
    return NoMatch("SwapProjectSelect");
  }
  if (!IsPathOf(pred_path, sel_lambda->params()[0], &stats->head_ops)) {
    return NoMatch("SwapProjectSelect");
  }

  // Head routine part 2: the projection body, alpha-renamed to the
  // selection variable, must BE the predicate's path (the paper's "variable
  // renaming" machinery: '\x. x.age' must be recognized as a subfunction of
  // '\p. p.age > 25').
  ExprPtr renamed = SubstituteVar(proj_lambda->child(0),
                                  proj_lambda->params()[0],
                                  Expr::Var(sel_lambda->params()[0]));
  stats->head_ops += static_cast<int>(renamed->node_count()) +
                     static_cast<int>(pred_path->node_count());
  if (!AlphaEqual(renamed, pred_path)) return NoMatch("SwapProjectSelect");

  // Body routine: build '\a. a OP k' and 'app(\p. PATH')(S)'.
  ExprPtr new_pred = Expr::Lambda(
      {"a"}, Expr::MakeBinOp(predicate->op(), Expr::Var("a"), pred_const));
  ExprPtr new_app = Expr::App(
      Expr::Lambda({sel_lambda->params()[0]}, pred_path), source);
  stats->body_ops += static_cast<int>(new_pred->node_count()) +
                     static_cast<int>(new_app->node_count()) + 1;
  stats->applied = true;
  return Expr::Sel(std::move(new_pred), std::move(new_app));
}

StatusOr<ExprPtr> AquaCodeMotion(const ExprPtr& expr,
                                 AquaTransformStats* stats) {
  *stats = AquaTransformStats{};
  if (!IsUnaryLoop(expr, ExprKind::kApp)) return NoMatch("AquaCodeMotion");
  const ExprPtr& lambda = expr->child(0);
  const ExprPtr& source = expr->child(1);
  const std::string& p = lambda->params()[0];

  const ExprPtr& body = lambda->child(0);
  ++stats->head_ops;
  if (body->kind() != ExprKind::kTuple) return NoMatch("AquaCodeMotion");
  ++stats->head_ops;
  if (body->child(0)->kind() != ExprKind::kVar ||
      body->child(0)->name() != p) {
    return NoMatch("AquaCodeMotion");
  }
  const ExprPtr& second = body->child(1);
  if (!IsUnaryLoop(second, ExprKind::kSel)) return NoMatch("AquaCodeMotion");
  const ExprPtr& sel_lambda = second->child(0);
  const ExprPtr& sel_source = second->child(1);

  // Head routine: ENVIRONMENTAL ANALYSIS. The transformation is valid only
  // when the selection variable does not occur free in the predicate --
  // i.e. the predicate constrains the outer environment only. This walks
  // the whole predicate, which is exactly the analysis that pure
  // unification cannot express over a variable-based representation
  // (Section 2.2). In KOLA the same fact is the visible difference between
  // `p @ pi1` and `p @ pi2`.
  const ExprPtr& predicate = sel_lambda->child(0);
  stats->head_ops += static_cast<int>(predicate->node_count());
  std::set<std::string> free = FreeVars(predicate);
  if (free.count(sel_lambda->params()[0]) > 0) {
    return NoMatch("AquaCodeMotion (predicate mentions the loop variable)");
  }

  // Body routine: rebuild as a conditional.
  ExprPtr hoisted = Expr::IfThenElse(
      predicate, Expr::Tuple(Expr::Var(p), sel_source),
      Expr::Tuple(Expr::Var(p), Expr::Const(Value::EmptySet())));
  stats->body_ops += static_cast<int>(hoisted->node_count());
  stats->applied = true;
  return Expr::App(Expr::Lambda({p}, std::move(hoisted)), source);
}

namespace {

ExprPtr MustParseAqua(const char* text) {
  auto expr = ParseAqua(text);
  KOLA_CHECK_OK(expr.status());
  return std::move(expr).value();
}

}  // namespace

ExprPtr QueryA3() {
  return MustParseAqua("app(\\p. [p, sel(\\c. c.age > 25)(p.child)])(P)");
}

ExprPtr QueryA4() {
  return MustParseAqua("app(\\p. [p, sel(\\c. p.age > 25)(p.child)])(P)");
}

ExprPtr AquaGarageQuery() {
  return MustParseAqua(
      "app(\\v. [v, flatten(app(\\p. p.grgs)(sel(\\p. v in p.cars)(P)))])"
      "(V)");
}

}  // namespace aqua
}  // namespace kola
