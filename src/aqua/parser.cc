#include "aqua/parser.h"

#include <cctype>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/parse_number.h"

namespace kola {
namespace aqua {

namespace {

enum class Tok {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kBackslash,
  kOp,  // == != < <= > >=
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  size_t position;
};

StatusOr<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t pos = 0;
  while (true) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    size_t at = pos;
    if (pos >= text.size()) {
      tokens.push_back({Tok::kEnd, "", at});
      return tokens;
    }
    char c = text[pos];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      size_t start = pos++;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      tokens.push_back(
          {Tok::kInt, std::string(text.substr(start, pos - start)), at});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_' || text[pos] == '\'')) {
        ++pos;
      }
      tokens.push_back(
          {Tok::kIdent, std::string(text.substr(start, pos - start)), at});
      continue;
    }
    switch (c) {
      case '"': {
        ++pos;
        size_t start = pos;
        while (pos < text.size() && text[pos] != '"') ++pos;
        if (pos >= text.size()) {
          return InvalidArgumentError("unterminated string at " +
                                      std::to_string(at));
        }
        tokens.push_back(
            {Tok::kString, std::string(text.substr(start, pos - start)),
             at});
        ++pos;
        continue;
      }
      case '(': tokens.push_back({Tok::kLParen, "(", at}); break;
      case ')': tokens.push_back({Tok::kRParen, ")", at}); break;
      case '[': tokens.push_back({Tok::kLBracket, "[", at}); break;
      case ']': tokens.push_back({Tok::kRBracket, "]", at}); break;
      case '{': tokens.push_back({Tok::kLBrace, "{", at}); break;
      case '}': tokens.push_back({Tok::kRBrace, "}", at}); break;
      case ',': tokens.push_back({Tok::kComma, ",", at}); break;
      case '.': tokens.push_back({Tok::kDot, ".", at}); break;
      case '\\': tokens.push_back({Tok::kBackslash, "\\", at}); break;
      case '=':
      case '!':
      case '<':
      case '>': {
        std::string op(1, c);
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          op += '=';
          ++pos;
        }
        if (op == "=" || op == "!") {
          return InvalidArgumentError("unknown operator '" + op + "' at " +
                                      std::to_string(at));
        }
        tokens.push_back({Tok::kOp, op, at});
        break;
      }
      default:
        return InvalidArgumentError(std::string("unexpected character '") +
                                    c + "' at " + std::to_string(at));
    }
    ++pos;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> ParseAll() {
    KOLA_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Peek().kind != Tok::kEnd) {
      return InvalidArgumentError("trailing input at " +
                                  std::to_string(Peek().position) + ": '" +
                                  Peek().text + "'");
    }
    return expr;
  }

 private:
  // Nesting bound for the recursive descent, mirroring the KOLA term
  // parser's guard: every nesting level of the input (parentheses, `not`
  // chains, nested calls) costs a handful of native frames, so
  // adversarially deep inputs -- a 100k-deep paren spine off the wire --
  // must fail with RESOURCE_EXHAUSTED well before the native stack runs
  // out. Real queries nest far below this.
  static constexpr int kMaxNestingDepth = 1'000;

  // Restores the depth a function entered with, so loop iterations can
  // charge EnterNesting once per constructed level (left-deep `or`/`and`
  // chains and `.`-path spines deepen the tree without recursing) and the
  // whole frame's charge is released on exit.
  struct DepthGuard {
    Parser* parser;
    int saved;
    ~DepthGuard() { parser->depth_ = saved; }
  };

  Status EnterNesting() {
    if (depth_ >= kMaxNestingDepth) {
      return ResourceExhaustedError(
          "AQUA nesting exceeds " + std::to_string(kMaxNestingDepth) +
          " levels at " + std::to_string(Peek().position));
    }
    ++depth_;
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[index_]; }
  Token Advance() { return tokens_[index_++]; }
  bool PeekIdent(const char* word) const {
    return Peek().kind == Tok::kIdent && Peek().text == word;
  }
  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) {
      return InvalidArgumentError(std::string("expected ") + what + " at " +
                                  std::to_string(Peek().position) +
                                  ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  StatusOr<ExprPtr> ParseOr() {
    DepthGuard guard{this, depth_};
    KOLA_RETURN_IF_ERROR(EnterNesting());
    KOLA_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekIdent("or")) {
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      KOLA_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Or(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    DepthGuard guard{this, depth_};
    KOLA_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekIdent("and")) {
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      KOLA_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::And(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (PeekIdent("not")) {
      DepthGuard guard{this, depth_};
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      KOLA_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Not(std::move(operand));
    }
    return ParseCmp();
  }

  StatusOr<ExprPtr> ParseCmp() {
    KOLA_ASSIGN_OR_RETURN(ExprPtr left, ParsePath());
    BinOp op;
    if (Peek().kind == Tok::kOp) {
      const std::string& text = Peek().text;
      if (text == "==") op = BinOp::kEq;
      else if (text == "!=") op = BinOp::kNeq;
      else if (text == "<") op = BinOp::kLt;
      else if (text == "<=") op = BinOp::kLeq;
      else if (text == ">") op = BinOp::kGt;
      else op = BinOp::kGeq;
      Advance();
    } else if (PeekIdent("in")) {
      Advance();
      op = BinOp::kIn;
    } else {
      return left;
    }
    KOLA_ASSIGN_OR_RETURN(ExprPtr right, ParsePath());
    return Expr::MakeBinOp(op, std::move(left), std::move(right));
  }

  StatusOr<ExprPtr> ParsePath() {
    DepthGuard guard{this, depth_};
    KOLA_ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    while (Peek().kind == Tok::kDot) {
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      if (Peek().kind != Tok::kIdent) {
        return InvalidArgumentError("expected attribute name after '.'");
      }
      expr = Expr::FunCall(Advance().text, std::move(expr));
    }
    return expr;
  }

  StatusOr<ExprPtr> ParseLambda() {
    KOLA_RETURN_IF_ERROR(Expect(Tok::kBackslash, "'\\'"));
    std::vector<std::string> params;
    while (Peek().kind == Tok::kIdent) params.push_back(Advance().text);
    if (params.empty() || params.size() > 2) {
      return InvalidArgumentError("lambda takes one or two parameters");
    }
    KOLA_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    for (const std::string& p : params) bound_.insert(p);
    auto body = ParseOr();
    // Erase one occurrence each (a multiset handles shadowed binders).
    for (const std::string& p : params) bound_.erase(bound_.find(p));
    if (!body.ok()) return body.status();
    return Expr::Lambda(std::move(params), std::move(body).value());
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kInt: {
        Advance();
        // A lexed integer can still be overlong; reject instead of letting
        // std::stoll throw out of the parser.
        KOLA_ASSIGN_OR_RETURN(int64_t value, ParseInt64(tok.text));
        return Expr::Const(Value::Int(value));
      }
      case Tok::kString: {
        Advance();
        return Expr::Const(Value::Str(tok.text));
      }
      case Tok::kLBrace: {
        Advance();
        std::vector<Value> elements;
        if (Peek().kind != Tok::kRBrace) {
          while (true) {
            KOLA_ASSIGN_OR_RETURN(ExprPtr element, ParseOr());
            if (element->kind() != ExprKind::kConst) {
              return InvalidArgumentError(
                  "set literals may only contain constants");
            }
            elements.push_back(element->literal());
            if (Peek().kind != Tok::kComma) break;
            Advance();
          }
        }
        KOLA_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}'"));
        return Expr::Const(Value::MakeSet(std::move(elements)));
      }
      case Tok::kLBracket: {
        Advance();
        KOLA_ASSIGN_OR_RETURN(ExprPtr a, ParseOr());
        KOLA_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
        KOLA_ASSIGN_OR_RETURN(ExprPtr b, ParseOr());
        KOLA_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
        return Expr::Tuple(std::move(a), std::move(b));
      }
      case Tok::kLParen: {
        Advance();
        KOLA_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return inner;
      }
      case Tok::kIdent: {
        if (tok.text == "app" || tok.text == "sel") {
          bool is_app = tok.text == "app";
          Advance();
          KOLA_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr lambda, ParseLambda());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          KOLA_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr set, ParseOr());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          return is_app ? Expr::App(std::move(lambda), std::move(set))
                        : Expr::Sel(std::move(lambda), std::move(set));
        }
        if (tok.text == "flatten") {
          Advance();
          KOLA_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr set, ParseOr());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          return Expr::Flatten(std::move(set));
        }
        if (tok.text == "join") {
          Advance();
          KOLA_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr pred, ParseLambda());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr fn, ParseLambda());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          KOLA_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOr());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
          KOLA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOr());
          KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          return Expr::Join(std::move(pred), std::move(fn), std::move(lhs),
                            std::move(rhs));
        }
        if (tok.text == "if") {
          Advance();
          KOLA_ASSIGN_OR_RETURN(ExprPtr cond, ParseOr());
          if (!PeekIdent("then")) {
            return InvalidArgumentError("expected 'then'");
          }
          Advance();
          KOLA_ASSIGN_OR_RETURN(ExprPtr then_branch, ParseOr());
          if (!PeekIdent("else")) {
            return InvalidArgumentError("expected 'else'");
          }
          Advance();
          KOLA_ASSIGN_OR_RETURN(ExprPtr else_branch, ParseOr());
          return Expr::IfThenElse(std::move(cond), std::move(then_branch),
                                  std::move(else_branch));
        }
        if (tok.text == "true" || tok.text == "false") {
          Advance();
          return Expr::Const(Value::Bool(tok.text == "true"));
        }
        Advance();
        if (bound_.count(tok.text) > 0) return Expr::Var(tok.text);
        return Expr::Collection(tok.text);
      }
      default:
        return InvalidArgumentError("unexpected token '" + tok.text +
                                    "' at " + std::to_string(tok.position));
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  int depth_ = 0;
  std::multiset<std::string> bound_;
};

}  // namespace

StatusOr<ExprPtr> ParseAqua(std::string_view text) {
  KOLA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  auto expr = parser.ParseAll();
  if (!expr.ok()) {
    return expr.status().WithContext("while parsing AQUA '" +
                                     std::string(text) + "'");
  }
  return expr;
}

}  // namespace aqua
}  // namespace kola
