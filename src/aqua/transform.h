#ifndef KOLA_AQUA_TRANSFORM_H_
#define KOLA_AQUA_TRANSFORM_H_

#include "aqua/expr.h"
#include "common/statusor.h"

namespace kola {
namespace aqua {

/// Instrumentation of the variable-based transformation baseline. The
/// counters measure the supplemental code Section 2 says AQUA-style rules
/// must carry: `head_ops` counts AST nodes examined by condition functions
/// (variable renaming, alpha-comparison, freeness analysis) and `body_ops`
/// counts nodes built or rewritten by action routines (substitution,
/// expression composition). The KOLA counterparts of these transformations
/// are single declarative rules with zero such operations.
struct AquaTransformStats {
  int head_ops = 0;
  int body_ops = 0;
  bool applied = false;
};

/// Figure 1, T1: app(\a. E1)(app(\p. E2)(S)) => app(\p. E1[a := E2])(S).
/// The body routine is capture-avoiding substitution over E1.
/// FAILED_PRECONDITION when the expression does not have this shape.
StatusOr<ExprPtr> FuseAppApp(const ExprPtr& expr, AquaTransformStats* stats);

/// Figure 1, T2: app(\x. PATH(x))(sel(\p. PATH'(p) > k)(S)) =>
/// sel(\a. a > k)(app(\p. PATH'(p))(S)), valid when PATH alpha-renamed to p
/// equals PATH'. The head routine performs the renaming + comparison; the
/// body routine decomposes the predicate and rebuilds both lambdas.
StatusOr<ExprPtr> SwapProjectSelect(const ExprPtr& expr,
                                    AquaTransformStats* stats);

/// Figure 2 code motion: app(\p. [p, sel(\c. Q)(E)])(S) =>
/// app(\p. if Q then [p, E] else [p, {}])(S), valid ONLY when c does not
/// occur free in Q -- the freeness head routine the paper says cannot be
/// replaced by unification over a variable-based representation.
StatusOr<ExprPtr> AquaCodeMotion(const ExprPtr& expr,
                                 AquaTransformStats* stats);

/// The paper's Figure 2 queries A3 (predicate on the child c -- not
/// hoistable) and A4 (predicate on the person p -- hoistable).
ExprPtr QueryA3();
ExprPtr QueryA4();

/// The AQUA Garage Query of Section 3 (translated by the KOLA translator
/// into exactly KG1; see translate/).
ExprPtr AquaGarageQuery();

}  // namespace aqua
}  // namespace kola

#endif  // KOLA_AQUA_TRANSFORM_H_
