#ifndef KOLA_COKO_STRATEGY_H_
#define KOLA_COKO_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/statusor.h"
#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace kola {

/// Result of running a strategy: the (possibly unchanged) term and whether
/// anything fired. "Did not fire" is success, not an error -- a strategy
/// that matches nothing leaves the query alone, which is exactly the
/// behaviour the paper wants from gradual rule sets ("the query has still
/// been simplified", Section 4.2).
struct StrategyResult {
  TermPtr term;
  bool changed = false;
};

/// A COKO firing strategy: a deterministic program over rule applications.
/// The paper defers COKO to follow-on work but describes its shape -- "sets
/// of rules that are used together, together with strategies for their
/// firing". This is that subset: apply-once, first-of, sequence,
/// repeat-until-fixpoint.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual StatusOr<StrategyResult> Run(const TermPtr& term,
                                       const Rewriter& rewriter,
                                       Trace* trace) const = 0;
};

using StrategyPtr = std::shared_ptr<const Strategy>;

/// Applies `rule` once at the leftmost-outermost redex (no-op if no match).
StrategyPtr Once(Rule rule);

/// Tries rules in order; the first that fires anywhere wins (no-op if none).
StrategyPtr FirstOf(std::vector<Rule> rules);

/// Runs sub-strategies in order; changed if any changed.
StrategyPtr Seq(std::vector<StrategyPtr> strategies);

/// Applies the rule set to fixpoint (leftmost-outermost, first matching
/// rule). Errors with RESOURCE_EXHAUSTED beyond `max_steps` firings.
StrategyPtr Exhaust(std::vector<Rule> rules, int max_steps = 10'000);

/// Repeats `body` while it reports change, at most `max_rounds` times.
StrategyPtr Repeat(StrategyPtr body, int max_rounds = 1'000);

/// One bottom-up sweep: at every position (children before parents), the
/// first rule that applies AT that position fires, once. The paper's rule
/// blocks need "to apply one or more rules in succession, and throughout a
/// tree" (Section 4.2); this is the single-sweep reading, cheaper and more
/// predictable than Exhaust for size-reducing rule sets like CNF cleanup.
StrategyPtr Everywhere(std::vector<Rule> rules);

/// A named rule block: a "conceptual transformation" such as "push selects
/// past joins" or one step of the hidden-join strategy.
class RuleBlock {
 public:
  RuleBlock(std::string name, StrategyPtr strategy)
      : name_(std::move(name)), strategy_(std::move(strategy)) {}

  const std::string& name() const { return name_; }
  const StrategyPtr& strategy() const { return strategy_; }

  StatusOr<StrategyResult> Apply(const TermPtr& term,
                                 const Rewriter& rewriter,
                                 Trace* trace) const {
    // Strategy boundaries are a fault-injection site: a block failing as a
    // unit models a bad rule-set deploy, and the optimizer must degrade to
    // its best-so-far term rather than fail the request.
    Status injected = MaybeInjectFault(FaultSite::kStrategy);
    if (!injected.ok()) {
      return injected.WithContext("rule block '" + name_ + "'");
    }
    if (rewriter.options().governor != nullptr) {
      Status budget = rewriter.options().governor->CheckNow();
      if (!budget.ok()) {
        return budget.WithContext("rule block '" + name_ + "'");
      }
    }
    return strategy_->Run(term, rewriter, trace);
  }

 private:
  std::string name_;
  StrategyPtr strategy_;
};

/// Prebuilt blocks over the standard catalog.
/// Rewrites predicates to conjunctive normal form.
RuleBlock CnfBlock();
/// Pushes component-local selections below joins.
RuleBlock PushSelectsPastJoinsBlock();
/// General cleanup: identity/constant/projection/conditional laws.
RuleBlock SimplifyBlock();

}  // namespace kola

#endif  // KOLA_COKO_STRATEGY_H_
