#ifndef KOLA_COKO_PARSER_H_
#define KOLA_COKO_PARSER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "coko/strategy.h"
#include "rewrite/rule.h"

namespace kola {

/// A parsed COKO module: named rule blocks in definition order.
struct CokoModule {
  std::vector<RuleBlock> blocks;

  /// Pointer into `blocks`; nullptr when absent.
  const RuleBlock* Find(const std::string& name) const;
};

/// Parses the COKO rule-block language -- the "[C]ontrol [O]f [K]OLA
/// [O]ptimizations" companion the paper leaves to future work
/// (Section 4.2): "rule blocks; sets of rules that are used together,
/// together with strategies for their firing".
///
///   module  := block*
///   block   := 'block' NAME '{' stmt* '}'
///   stmt    := 'exhaust' rules ';'        -- apply to fixpoint
///            | 'once' rules ';'           -- first rule that fires, once
///            | 'everywhere' rules ';'     -- one bottom-up sweep
///            | 'repeat' '{' stmt* '}'     -- loop body while it changes
///            | 'use' NAME ';'             -- run a previously defined block
///   rules   := ruleref (',' ruleref)*
///   ruleref := RULE-ID modifier*   with modifier '~' (right-to-left
///              reading) or '!' (apply-level variant)
///
/// Rule ids are resolved against `catalog` (e.g. AllCatalogRules()).
/// Comments run from '#' to end of line. Example:
///
///   # the five-step hidden-join strategy
///   block break-up { exhaust 17!, 17b!, 2, 4, 18, norm.id-apply; }
///   block pipeline { use break-up; once 19; }
StatusOr<CokoModule> ParseCoko(std::string_view text,
                               const std::vector<Rule>& catalog);

/// The five-step hidden-join strategy written in COKO (matches
/// HiddenJoinBlocks(); tested equivalent).
extern const char kHiddenJoinCoko[];

}  // namespace kola

#endif  // KOLA_COKO_PARSER_H_
