#include "coko/parser.h"

#include <cctype>

#include "common/macros.h"

namespace kola {

const RuleBlock* CokoModule::Find(const std::string& name) const {
  for (const RuleBlock& block : blocks) {
    if (block.name() == name) return &block;
  }
  return nullptr;
}

namespace {

struct Token {
  enum Kind { kWord, kComma, kSemicolon, kLBrace, kRBrace, kEnd } kind;
  std::string text;
  size_t position;
};

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    size_t at = pos;
    switch (c) {
      case ',': tokens.push_back({Token::kComma, ",", at}); ++pos; continue;
      case ';':
        tokens.push_back({Token::kSemicolon, ";", at});
        ++pos;
        continue;
      case '{': tokens.push_back({Token::kLBrace, "{", at}); ++pos; continue;
      case '}': tokens.push_back({Token::kRBrace, "}", at}); ++pos; continue;
      default: break;
    }
    // Words: block names and rule ids (letters, digits, '.', '-', '_')
    // plus the '~' and '!' modifiers.
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == '-' || text[pos] == '_' ||
            text[pos] == '~' || text[pos] == '!')) {
      ++pos;
    }
    if (pos == start) {
      tokens.push_back({Token::kWord, std::string(1, c), at});
      ++pos;
      continue;
    }
    tokens.push_back(
        {Token::kWord, std::string(text.substr(start, pos - start)), at});
  }
  tokens.push_back({Token::kEnd, "", text.size()});
  return tokens;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const std::vector<Rule>* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  StatusOr<CokoModule> ParseModule() {
    CokoModule module;
    while (Peek().kind != Token::kEnd) {
      KOLA_RETURN_IF_ERROR(ExpectWord("block"));
      if (Peek().kind != Token::kWord) {
        return InvalidArgumentError("expected block name");
      }
      std::string name = Advance().text;
      KOLA_RETURN_IF_ERROR(Expect(Token::kLBrace, "'{'"));
      KOLA_ASSIGN_OR_RETURN(StrategyPtr body, ParseStmts(module));
      KOLA_RETURN_IF_ERROR(Expect(Token::kRBrace, "'}'"));
      module.blocks.emplace_back(std::move(name), std::move(body));
    }
    if (module.blocks.empty()) {
      return InvalidArgumentError("COKO module defines no blocks");
    }
    return module;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Advance() { return tokens_[index_++]; }

  Status Expect(Token::Kind kind, const char* what) {
    if (Peek().kind != kind) {
      return InvalidArgumentError(std::string("expected ") + what +
                                  " at offset " +
                                  std::to_string(Peek().position) +
                                  ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectWord(const char* word) {
    if (Peek().kind != Token::kWord || Peek().text != word) {
      return InvalidArgumentError(std::string("expected '") + word +
                                  "' at offset " +
                                  std::to_string(Peek().position) +
                                  ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  /// Resolves "id", "id~", "id!", "id~!" against the catalog.
  StatusOr<Rule> ResolveRule(const std::string& reference) {
    std::string id = reference;
    bool reversed = false;
    bool apply_level = false;
    while (!id.empty() && (id.back() == '~' || id.back() == '!')) {
      if (id.back() == '~') reversed = true;
      if (id.back() == '!') apply_level = true;
      id.pop_back();
    }
    const Rule* found = nullptr;
    for (const Rule& rule : *catalog_) {
      if (rule.id == id) {
        found = &rule;
        break;
      }
    }
    if (found == nullptr) {
      return NotFoundError("COKO references unknown rule '" + id + "'");
    }
    Rule rule = *found;
    if (reversed) {
      KOLA_ASSIGN_OR_RETURN(rule, ReverseRule(rule));
    }
    if (apply_level) {
      KOLA_ASSIGN_OR_RETURN(rule, ApplyLevelVariant(rule));
    }
    return rule;
  }

  StatusOr<std::vector<Rule>> ParseRuleList() {
    std::vector<Rule> rules;
    while (true) {
      if (Peek().kind != Token::kWord) {
        return InvalidArgumentError("expected rule id at offset " +
                                    std::to_string(Peek().position));
      }
      KOLA_ASSIGN_OR_RETURN(Rule rule, ResolveRule(Advance().text));
      rules.push_back(std::move(rule));
      if (Peek().kind != Token::kComma) break;
      Advance();
    }
    return rules;
  }

  StatusOr<StrategyPtr> ParseStmts(const CokoModule& module) {
    std::vector<StrategyPtr> strategies;
    while (Peek().kind == Token::kWord) {
      const std::string& keyword = Peek().text;
      if (keyword == "exhaust") {
        Advance();
        KOLA_ASSIGN_OR_RETURN(std::vector<Rule> rules, ParseRuleList());
        KOLA_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
        strategies.push_back(Exhaust(std::move(rules)));
      } else if (keyword == "once") {
        Advance();
        KOLA_ASSIGN_OR_RETURN(std::vector<Rule> rules, ParseRuleList());
        KOLA_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
        strategies.push_back(FirstOf(std::move(rules)));
      } else if (keyword == "everywhere") {
        Advance();
        KOLA_ASSIGN_OR_RETURN(std::vector<Rule> rules, ParseRuleList());
        KOLA_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
        strategies.push_back(Everywhere(std::move(rules)));
      } else if (keyword == "repeat") {
        Advance();
        KOLA_RETURN_IF_ERROR(Expect(Token::kLBrace, "'{'"));
        KOLA_ASSIGN_OR_RETURN(StrategyPtr body, ParseStmts(module));
        KOLA_RETURN_IF_ERROR(Expect(Token::kRBrace, "'}'"));
        strategies.push_back(Repeat(std::move(body)));
      } else if (keyword == "use") {
        Advance();
        if (Peek().kind != Token::kWord) {
          return InvalidArgumentError("expected block name after 'use'");
        }
        std::string name = Advance().text;
        KOLA_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
        const RuleBlock* block = module.Find(name);
        if (block == nullptr) {
          return NotFoundError("'use " + name +
                               "' references an undefined block (blocks "
                               "must be defined before use)");
        }
        strategies.push_back(block->strategy());
      } else {
        break;  // 'block' or '}' handled by the caller
      }
    }
    if (strategies.empty()) {
      return InvalidArgumentError("empty strategy body");
    }
    if (strategies.size() == 1) return strategies[0];
    return Seq(std::move(strategies));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  const std::vector<Rule>* catalog_;
};

}  // namespace

StatusOr<CokoModule> ParseCoko(std::string_view text,
                               const std::vector<Rule>& catalog) {
  Parser parser(Tokenize(text), &catalog);
  return parser.ParseModule();
}

const char kHiddenJoinCoko[] = R"(
# The five-step hidden-join strategy of Section 4.1, as a COKO module.
block prep           { exhaust norm.assoc, norm.unfold, norm.id-apply; }
block break-up       { exhaust 17!, 17b!, 2, 4, 18, norm.id-apply; }
block bottom-out     { exhaust 19, norm.unfold; }
block pull-up-nest   { exhaust 20!, 21!, 1, 2, 4; }
block pull-up-unnest { exhaust 22!, 22b!, 23!, 1, 2, 4; }
block absorb-join    { exhaust 24!, 3, 5, 6, 1, 2, ext.and-true-right; }
block polish {
  exhaust ext.pair-to-product, ext.pair-to-product-left,
          ext.pair-to-product-right, 4, 1, 2, norm.fold, norm.assoc;
}
block hidden-join {
  use prep;
  use break-up;
  use bottom-out;
  use pull-up-nest;
  use pull-up-unnest;
  use absorb-join;
  use polish;
}
)";

}  // namespace kola
