#include "coko/strategy.h"

#include "common/macros.h"
#include "rules/catalog.h"

namespace kola {

namespace {

class OnceStrategy : public Strategy {
 public:
  explicit OnceStrategy(Rule rule) : rule_(std::move(rule)) {}

  StatusOr<StrategyResult> Run(const TermPtr& term, const Rewriter& rewriter,
                               Trace* trace) const override {
    RewriteStep step;
    if (auto result = rewriter.ApplyOnce(rule_, term, &step)) {
      if (trace != nullptr) {
        if (trace->initial == nullptr) trace->initial = term;
        trace->steps.push_back(std::move(step));
      }
      return StrategyResult{*result, true};
    }
    return StrategyResult{term, false};
  }

 private:
  Rule rule_;
};

class FirstOfStrategy : public Strategy {
 public:
  explicit FirstOfStrategy(std::vector<Rule> rules)
      : rules_(std::move(rules)) {}

  StatusOr<StrategyResult> Run(const TermPtr& term, const Rewriter& rewriter,
                               Trace* trace) const override {
    RewriteStep step;
    if (auto result = rewriter.ApplyAnyOnce(rules_, term, &step)) {
      if (trace != nullptr) {
        if (trace->initial == nullptr) trace->initial = term;
        trace->steps.push_back(std::move(step));
      }
      return StrategyResult{*result, true};
    }
    return StrategyResult{term, false};
  }

 private:
  std::vector<Rule> rules_;
};

class SeqStrategy : public Strategy {
 public:
  explicit SeqStrategy(std::vector<StrategyPtr> strategies)
      : strategies_(std::move(strategies)) {}

  StatusOr<StrategyResult> Run(const TermPtr& term, const Rewriter& rewriter,
                               Trace* trace) const override {
    StrategyResult accumulated{term, false};
    for (const StrategyPtr& strategy : strategies_) {
      // Strategy-step boundary: like Repeat, probe the clock before every
      // component so a deadline that expired inside the previous one stops
      // the sequence immediately (in-Charge sampling is periodic and can
      // trail a slow step by hundreds of ms).
      if (rewriter.options().governor != nullptr) {
        KOLA_RETURN_IF_ERROR(rewriter.options().governor->CheckNow());
      }
      KOLA_ASSIGN_OR_RETURN(StrategyResult result,
                            strategy->Run(accumulated.term, rewriter, trace));
      accumulated.term = result.term;
      accumulated.changed = accumulated.changed || result.changed;
    }
    return accumulated;
  }

 private:
  std::vector<StrategyPtr> strategies_;
};

class ExhaustStrategy : public Strategy {
 public:
  ExhaustStrategy(std::vector<Rule> rules, int max_steps)
      : rules_(std::move(rules)), max_steps_(max_steps) {}

  StatusOr<StrategyResult> Run(const TermPtr& term, const Rewriter& rewriter,
                               Trace* trace) const override {
    size_t steps_before = trace == nullptr ? 0 : trace->steps.size();
    KOLA_ASSIGN_OR_RETURN(
        TermPtr result, rewriter.Fixpoint(rules_, term, trace, max_steps_));
    bool changed = trace == nullptr ? !Term::Equal(result, term)
                                    : trace->steps.size() > steps_before;
    return StrategyResult{std::move(result), changed};
  }

 private:
  std::vector<Rule> rules_;
  int max_steps_;
};

class RepeatStrategy : public Strategy {
 public:
  RepeatStrategy(StrategyPtr body, int max_rounds)
      : body_(std::move(body)), max_rounds_(max_rounds) {}

  StatusOr<StrategyResult> Run(const TermPtr& term, const Rewriter& rewriter,
                               Trace* trace) const override {
    StrategyResult accumulated{term, false};
    for (int round = 0; round < max_rounds_; ++round) {
      if (rewriter.options().governor != nullptr) {
        KOLA_RETURN_IF_ERROR(rewriter.options().governor->CheckNow());
      }
      KOLA_ASSIGN_OR_RETURN(StrategyResult result,
                            body_->Run(accumulated.term, rewriter, trace));
      if (!result.changed) return accumulated;
      accumulated.term = result.term;
      accumulated.changed = true;
    }
    return ResourceExhaustedError("Repeat strategy exceeded " +
                                  std::to_string(max_rounds_) + " rounds");
  }

 private:
  StrategyPtr body_;
  int max_rounds_;
};

class EverywhereStrategy : public Strategy {
 public:
  explicit EverywhereStrategy(std::vector<Rule> rules)
      : rules_(std::move(rules)),
        fingerprint_(RuleSetFingerprint(rules_)) {}

  StatusOr<StrategyResult> Run(const TermPtr& term, const Rewriter& rewriter,
                               Trace* trace) const override {
    bool changed = false;
    // One index acquisition per sweep (the fingerprint is precomputed at
    // construction), consulted at every node below. nullptr degrades every
    // ApplyAnyAtRoot to the plain linear probe.
    auto index = rewriter.IndexFor(rules_, fingerprint_);
    TermPtr result = Sweep(term, rewriter, index.get(), trace, &changed);
    return StrategyResult{std::move(result), changed};
  }

 private:
  TermPtr Sweep(const TermPtr& term, const Rewriter& rewriter,
                const RuleIndex* index, Trace* trace, bool* changed) const {
    // Children first.
    TermPtr current = term;
    if (!term->is_leaf()) {
      bool child_changed = false;
      std::vector<TermPtr> children;
      children.reserve(term->arity());
      for (const TermPtr& child : term->children()) {
        TermPtr swept = Sweep(child, rewriter, index, trace, changed);
        child_changed = child_changed || swept.get() != child.get();
        children.push_back(std::move(swept));
      }
      if (child_changed) current = term->WithChildren(std::move(children));
    }
    // Then this position, once.
    size_t fired = 0;
    if (auto rewritten =
            rewriter.ApplyAnyAtRoot(rules_, current, index, &fired)) {
      if (trace != nullptr) {
        if (trace->initial == nullptr) trace->initial = term;
        trace->steps.push_back(
            RewriteStep{rules_[fired].id, {}, current, *rewritten,
                        *rewritten});
      }
      *changed = true;
      return *rewritten;
    }
    return current;
  }

  std::vector<Rule> rules_;
  uint64_t fingerprint_;
};

/// Collects the catalog rules with the given ids.
std::vector<Rule> CatalogRules(const std::vector<std::string>& ids) {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> selected;
  selected.reserve(ids.size());
  for (const std::string& id : ids) selected.push_back(FindRule(all, id));
  return selected;
}

}  // namespace

StrategyPtr Once(Rule rule) {
  return std::make_shared<OnceStrategy>(std::move(rule));
}

StrategyPtr FirstOf(std::vector<Rule> rules) {
  return std::make_shared<FirstOfStrategy>(std::move(rules));
}

StrategyPtr Seq(std::vector<StrategyPtr> strategies) {
  return std::make_shared<SeqStrategy>(std::move(strategies));
}

StrategyPtr Exhaust(std::vector<Rule> rules, int max_steps) {
  return std::make_shared<ExhaustStrategy>(std::move(rules), max_steps);
}

StrategyPtr Repeat(StrategyPtr body, int max_rounds) {
  return std::make_shared<RepeatStrategy>(std::move(body), max_rounds);
}

StrategyPtr Everywhere(std::vector<Rule> rules) {
  return std::make_shared<EverywhereStrategy>(std::move(rules));
}

RuleBlock CnfBlock() {
  return RuleBlock(
      "convert predicates to CNF",
      Exhaust(CatalogRules({"ext.not-not", "ext.demorgan-and",
                            "ext.demorgan-or", "ext.cnf-dist-left",
                            "ext.cnf-dist-right"})));
}

RuleBlock PushSelectsPastJoinsBlock() {
  return RuleBlock("push selects past joins",
                   Exhaust(CatalogRules({"ext.select-past-join-left",
                                         "ext.select-past-join-right"})));
}

RuleBlock SimplifyBlock() {
  return RuleBlock(
      "simplify",
      Exhaust(CatalogRules(
          {"1", "2", "3", "4", "5", "6", "8", "9", "10", "18",
           "ext.and-true-right", "ext.and-false", "ext.or-true",
           "ext.or-false", "ext.product-id", "ext.con-true", "ext.con-false",
           "ext.con-same", "ext.not-not", "ext.inv-inv", "ext.iterate-false",
           "norm.id-apply"})));
}

}  // namespace kola
