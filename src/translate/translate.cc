#include "translate/translate.h"

#include <algorithm>

#include "common/macros.h"

namespace kola {

namespace {

using aqua::BinOp;
using aqua::Expr;
using aqua::ExprKind;
using aqua::ExprPtr;

/// Composition with on-the-fly identity elimination (keeps translations
/// small, mirroring the paper's observation that translated queries stay
/// under 2x the source size).
TermPtr SmartCompose(TermPtr f, TermPtr g) {
  if (f->IsPrimFn("id")) return g;
  if (g->IsPrimFn("id")) return f;
  return Compose(std::move(f), std::move(g));
}

const char* PredNameFor(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "eq";
    case BinOp::kNeq: return "neq";
    case BinOp::kLt: return "lt";
    case BinOp::kLeq: return "leq";
    case BinOp::kGt: return "gt";
    case BinOp::kGeq: return "geq";
    case BinOp::kIn: return "in";
  }
  return "eq";
}

bool IsBooleanKind(ExprKind kind) {
  return kind == ExprKind::kBinOp || kind == ExprKind::kAnd ||
         kind == ExprKind::kOr || kind == ExprKind::kNot;
}

/// Index of `name` in `env`, innermost (last) occurrence for shadowing.
StatusOr<size_t> EnvIndex(const std::vector<std::string>& env,
                          const std::string& name) {
  for (size_t i = env.size(); i-- > 0;) {
    if (env[i] == name) return i;
  }
  return NotFoundError("unbound variable " + name +
                       " (not in the translation environment)");
}

}  // namespace

Status Translator::EnterNesting(const ExprPtr& expr) {
  // Matches the parsers' nesting bound (term/parser.cc): each level of the
  // mutual recursion costs a bounded number of native frames, so 1000
  // levels fail cleanly long before the stack would run out.
  static constexpr int kMaxNestingDepth = 1'000;
  if (depth_ >= kMaxNestingDepth) {
    return ResourceExhaustedError(
        "AQUA expression nesting exceeds " +
        std::to_string(kMaxNestingDepth) + " levels while translating " +
        aqua::ExprKindToString(expr->kind()));
  }
  ++depth_;
  return Status::OK();
}

TermPtr Translator::Seq(TermPtr f, TermPtr g) const {
  if (options_.simplify_identities) return SmartCompose(std::move(f), std::move(g));
  return Compose(std::move(f), std::move(g));
}

TermPtr Translator::AccessPath(size_t i, size_t k) {
  KOLA_CHECK(k >= 1 && i < k);
  if (k == 1) return Id();
  if (i == k - 1) return Pi2();
  return SmartCompose(AccessPath(i, k - 1), Pi1());
}

StatusOr<TermPtr> Translator::TranslateFn(
    const ExprPtr& expr, const std::vector<std::string>& env) {
  KOLA_CHECK(!env.empty());
  KOLA_RETURN_IF_ERROR(EnterNesting(expr));
  DepthGuard guard{this};
  switch (expr->kind()) {
    case ExprKind::kVar: {
      KOLA_ASSIGN_OR_RETURN(size_t index, EnvIndex(env, expr->name()));
      return AccessPath(index, env.size());
    }
    case ExprKind::kConst:
      return ConstFn(Lit(expr->literal()));
    case ExprKind::kCollection:
      return ConstFn(Collection(expr->name()));
    default:
      break;
  }
  // Closed subexpressions become constants (this is where Kf(P) in the
  // Garage Query comes from, generalized to whole closed subqueries).
  if (options_.fold_closed_subqueries && !IsBooleanKind(expr->kind()) &&
      aqua::FreeVars(expr).empty()) {
    KOLA_ASSIGN_OR_RETURN(TermPtr closed, TranslateQuery(expr));
    return ConstFn(std::move(closed));
  }
  switch (expr->kind()) {
    case ExprKind::kTuple: {
      KOLA_ASSIGN_OR_RETURN(TermPtr a, TranslateFn(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(TermPtr b, TranslateFn(expr->child(1), env));
      return PairFn(std::move(a), std::move(b));
    }
    case ExprKind::kFunCall: {
      KOLA_ASSIGN_OR_RETURN(TermPtr arg, TranslateFn(expr->child(0), env));
      return Seq(PrimFn(expr->name()), std::move(arg));
    }
    case ExprKind::kApp:
    case ExprKind::kSel: {
      const ExprPtr& lambda = expr->child(0);
      if (lambda->kind() != ExprKind::kLambda ||
          lambda->params().size() != 1) {
        return InvalidArgumentError("app/sel expects a unary lambda");
      }
      KOLA_ASSIGN_OR_RETURN(TermPtr source,
                            TranslateFn(expr->child(1), env));
      std::vector<std::string> inner_env = env;
      inner_env.push_back(lambda->params()[0]);
      TermPtr loop;
      if (expr->kind() == ExprKind::kApp) {
        KOLA_ASSIGN_OR_RETURN(TermPtr body,
                              TranslateFn(lambda->child(0), inner_env));
        loop = Iter(ConstPredTrue(), std::move(body));
      } else {
        KOLA_ASSIGN_OR_RETURN(TermPtr pred,
                              TranslatePred(lambda->child(0), inner_env));
        loop = Iter(std::move(pred), Pi2());
      }
      return Seq(std::move(loop), PairFn(Id(), std::move(source)));
    }
    case ExprKind::kFlatten: {
      KOLA_ASSIGN_OR_RETURN(TermPtr inner, TranslateFn(expr->child(0), env));
      return Seq(Flat(), std::move(inner));
    }
    case ExprKind::kIfThenElse: {
      KOLA_ASSIGN_OR_RETURN(TermPtr cond,
                            TranslatePred(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(TermPtr then_fn,
                            TranslateFn(expr->child(1), env));
      KOLA_ASSIGN_OR_RETURN(TermPtr else_fn,
                            TranslateFn(expr->child(2), env));
      return Cond(std::move(cond), std::move(then_fn), std::move(else_fn));
    }
    case ExprKind::kJoin:
      return UnimplementedError(
          "join under a non-empty environment is not supported by the "
          "translator (desugar to app/sel first)");
    case ExprKind::kLambda:
      return InvalidArgumentError("naked lambda has no translation");
    default:
      return InvalidArgumentError(
          std::string("boolean expression used as an object: ") +
          expr->ToString());
  }
}

StatusOr<TermPtr> Translator::TranslatePred(
    const ExprPtr& expr, const std::vector<std::string>& env) {
  KOLA_RETURN_IF_ERROR(EnterNesting(expr));
  DepthGuard guard{this};
  switch (expr->kind()) {
    case ExprKind::kBinOp: {
      KOLA_ASSIGN_OR_RETURN(TermPtr lhs, TranslateFn(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(TermPtr rhs, TranslateFn(expr->child(1), env));
      return Oplus(PrimPred(PredNameFor(expr->op())),
                   PairFn(std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kAnd: {
      KOLA_ASSIGN_OR_RETURN(TermPtr p, TranslatePred(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(TermPtr q, TranslatePred(expr->child(1), env));
      return AndP(std::move(p), std::move(q));
    }
    case ExprKind::kOr: {
      KOLA_ASSIGN_OR_RETURN(TermPtr p, TranslatePred(expr->child(0), env));
      KOLA_ASSIGN_OR_RETURN(TermPtr q, TranslatePred(expr->child(1), env));
      return OrP(std::move(p), std::move(q));
    }
    case ExprKind::kNot: {
      KOLA_ASSIGN_OR_RETURN(TermPtr p, TranslatePred(expr->child(0), env));
      return NotP(std::move(p));
    }
    case ExprKind::kConst: {
      if (expr->literal().is_bool()) {
        return ConstPred(BoolConst(expr->literal().bool_value()));
      }
      return TypeError("non-boolean constant used as a predicate: " +
                       expr->literal().ToString());
    }
    default:
      return InvalidArgumentError(
          std::string("expression is not a predicate: ") + expr->ToString());
  }
}

StatusOr<TermPtr> Translator::TranslateQuery(const ExprPtr& expr) {
  KOLA_RETURN_IF_ERROR(EnterNesting(expr));
  DepthGuard guard{this};
  switch (expr->kind()) {
    case ExprKind::kConst:
      return Lit(expr->literal());
    case ExprKind::kCollection:
      return Collection(expr->name());
    case ExprKind::kTuple: {
      KOLA_ASSIGN_OR_RETURN(TermPtr a, TranslateQuery(expr->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermPtr b, TranslateQuery(expr->child(1)));
      return PairObj(std::move(a), std::move(b));
    }
    case ExprKind::kFunCall: {
      KOLA_ASSIGN_OR_RETURN(TermPtr arg, TranslateQuery(expr->child(0)));
      return Apply(PrimFn(expr->name()), std::move(arg));
    }
    case ExprKind::kApp:
    case ExprKind::kSel: {
      const ExprPtr& lambda = expr->child(0);
      if (lambda->kind() != ExprKind::kLambda ||
          lambda->params().size() != 1) {
        return InvalidArgumentError("app/sel expects a unary lambda");
      }
      KOLA_ASSIGN_OR_RETURN(TermPtr source,
                            TranslateQuery(expr->child(1)));
      std::vector<std::string> env = {lambda->params()[0]};
      TermPtr loop;
      if (expr->kind() == ExprKind::kApp) {
        KOLA_ASSIGN_OR_RETURN(TermPtr body,
                              TranslateFn(lambda->child(0), env));
        loop = Iterate(ConstPredTrue(), std::move(body));
      } else {
        KOLA_ASSIGN_OR_RETURN(TermPtr pred,
                              TranslatePred(lambda->child(0), env));
        loop = Iterate(std::move(pred), Id());
      }
      return Apply(std::move(loop), std::move(source));
    }
    case ExprKind::kFlatten: {
      KOLA_ASSIGN_OR_RETURN(TermPtr inner, TranslateQuery(expr->child(0)));
      return Apply(Flat(), std::move(inner));
    }
    case ExprKind::kJoin: {
      const ExprPtr& pred_lambda = expr->child(0);
      const ExprPtr& fn_lambda = expr->child(1);
      if (pred_lambda->kind() != ExprKind::kLambda ||
          pred_lambda->params().size() != 2 ||
          fn_lambda->kind() != ExprKind::kLambda ||
          fn_lambda->params().size() != 2) {
        return InvalidArgumentError("join expects binary lambdas");
      }
      KOLA_ASSIGN_OR_RETURN(TermPtr lhs, TranslateQuery(expr->child(2)));
      KOLA_ASSIGN_OR_RETURN(TermPtr rhs, TranslateQuery(expr->child(3)));
      KOLA_ASSIGN_OR_RETURN(
          TermPtr pred,
          TranslatePred(pred_lambda->child(0), pred_lambda->params()));
      KOLA_ASSIGN_OR_RETURN(
          TermPtr fn,
          TranslateFn(fn_lambda->child(0), fn_lambda->params()));
      return Apply(Join(std::move(pred), std::move(fn)),
                   PairObj(std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kVar:
      return InvalidArgumentError("query is not closed: free variable " +
                                  expr->name());
    default:
      return UnimplementedError(
          std::string("no query-level translation for ") +
          aqua::ExprKindToString(expr->kind()));
  }
}

namespace {

void MaxEnvDepthImpl(const ExprPtr& expr, size_t current, size_t* best) {
  if (expr->kind() == ExprKind::kLambda) {
    current += expr->params().size();
    *best = std::max(*best, current);
  }
  for (const ExprPtr& child : expr->children()) {
    MaxEnvDepthImpl(child, current, best);
  }
}

}  // namespace

size_t MaxEnvDepth(const ExprPtr& expr) {
  size_t best = 0;
  MaxEnvDepthImpl(expr, 0, &best);
  return best;
}

StatusOr<TranslationSizes> MeasureTranslation(const ExprPtr& expr,
                                              TranslateOptions options) {
  Translator translator(options);
  KOLA_ASSIGN_OR_RETURN(TermPtr term, translator.TranslateQuery(expr));
  TranslationSizes sizes;
  sizes.aqua_nodes = expr->node_count();
  sizes.kola_nodes = term->node_count();
  sizes.max_env_depth = MaxEnvDepth(expr);
  return sizes;
}

}  // namespace kola
