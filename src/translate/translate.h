#ifndef KOLA_TRANSLATE_TRANSLATE_H_
#define KOLA_TRANSLATE_TRANSLATE_H_

#include <string>
#include <vector>

#include "aqua/expr.h"
#include "common/statusor.h"
#include "term/term.h"

namespace kola {

/// Translates variable-based AQUA queries into variable-free KOLA terms,
/// following the environment-passing scheme of the paper's companion
/// report [11] (also sketched in Section 3 and Section 4.2):
///
///  * a lambda body is translated relative to an ENVIRONMENT, the list of
///    enclosing lambda variables [x1..xk], represented at run time as the
///    left-nested pair [[..[x1,x2]..], xk];
///  * variable access becomes a pi1/pi2 projection chain;
///  * iteration under a non-empty environment uses `iter`, whose invocation
///    `iter(p,f) ! [e, B]` threads the environment pair e explicitly (the
///    paper: "e can be a representation of the environment that would be
///    implicit in a variable-based query representation");
///  * closed subexpressions become constants via Kf (which is where the
///    Garage Query's `Kf(P)` comes from).
///
/// The translation of the AQUA Garage Query is exactly KG1 of Figure 3
/// (tested).
/// Ablation switches (bench_translation measures their effect; both
/// default on, matching the paper's size observations).
struct TranslateOptions {
  /// Eliminate `id o f` / `f o id` while building (keeps access paths
  /// small).
  bool simplify_identities = true;
  /// Translate closed subexpressions to Kf(constant-query) instead of
  /// threading them through the environment.
  bool fold_closed_subqueries = true;
};

class Translator {
 public:
  Translator() = default;
  explicit Translator(TranslateOptions options) : options_(options) {}

  /// Translates a closed AQUA query to an object-sorted KOLA term.
  StatusOr<TermPtr> TranslateQuery(const aqua::ExprPtr& expr);

  /// Translates an expression to a KOLA *function* of the environment
  /// `env` (innermost variable last). `env` must not be empty.
  StatusOr<TermPtr> TranslateFn(const aqua::ExprPtr& expr,
                                const std::vector<std::string>& env);

  /// Translates a boolean expression to a KOLA *predicate* on `env`.
  StatusOr<TermPtr> TranslatePred(const aqua::ExprPtr& expr,
                                  const std::vector<std::string>& env);

  /// pi1/pi2 chain selecting variable index `i` (0-based) from a
  /// `k`-variable environment.
  static TermPtr AccessPath(size_t i, size_t k);

 private:
  TermPtr Seq(TermPtr f, TermPtr g) const;

  /// Guards the mutual TranslateQuery/TranslateFn/TranslatePred recursion
  /// the same way the parsers guard theirs: expressions that slip past a
  /// front-end bound (e.g. built programmatically) degrade to
  /// RESOURCE_EXHAUSTED instead of exhausting the native stack.
  Status EnterNesting(const aqua::ExprPtr& expr);
  struct DepthGuard {
    Translator* translator;
    ~DepthGuard() { --translator->depth_; }
  };

  TranslateOptions options_;
  int depth_ = 0;
};

/// Size metrics for the complexity claim of Section 4.2: translated
/// queries are O(m*n) with m the maximum environment depth, observed
/// less than 2x in practice.
struct TranslationSizes {
  size_t aqua_nodes = 0;
  size_t kola_nodes = 0;
  size_t max_env_depth = 0;
  double ratio() const {
    return aqua_nodes == 0 ? 0.0
                           : static_cast<double>(kola_nodes) /
                                 static_cast<double>(aqua_nodes);
  }
};

/// Translates and measures.
StatusOr<TranslationSizes> MeasureTranslation(
    const aqua::ExprPtr& expr, TranslateOptions options = TranslateOptions());

/// Maximum lambda-nesting depth of an AQUA expression (the paper's m).
size_t MaxEnvDepth(const aqua::ExprPtr& expr);

}  // namespace kola

#endif  // KOLA_TRANSLATE_TRANSLATE_H_
