#include "rules/catalog.h"

#include "common/macros.h"

namespace kola {

namespace {

Rule R(const std::string& id, const std::string& description,
       const std::string& lhs, const std::string& rhs, Sort sort) {
  auto rule = MakeRule(id, description, lhs, rhs, sort);
  KOLA_CHECK_OK(rule.status());
  return std::move(rule).value();
}

Rule RC(const std::string& id, const std::string& description,
        const std::string& lhs, const std::string& rhs, Sort sort,
        const std::vector<std::pair<std::string, std::string>>& conditions) {
  auto rule = MakeConditionalRule(id, description, lhs, rhs, sort,
                                  conditions);
  KOLA_CHECK_OK(rule.status());
  return std::move(rule).value();
}

constexpr Sort kFn = Sort::kFunction;
constexpr Sort kPr = Sort::kPredicate;
constexpr Sort kOb = Sort::kObject;

}  // namespace

std::vector<Rule> PaperRules() {
  std::vector<Rule> rules;
  rules.push_back(R("1", "right identity of composition",
                    "?f o id", "?f", kFn));
  rules.push_back(R("2", "left identity of composition",
                    "id o ?f", "?f", kFn));
  rules.push_back(R("3", "oplus with identity",
                    "?p @ id", "?p", kPr));
  rules.push_back(R("4", "projection pair is identity",
                    "(pi1, pi2)", "id", kFn));
  rules.push_back(R("5", "true conjunct elimination",
                    "Kp(T) & ?p", "?p", kPr));
  rules.push_back(R("6", "constant predicate absorbs composition",
                    "Kp(?b) @ ?f", "Kp(?b)", kPr));
  // The paper prints `inv(gt) => leq`; the sound converse of gt is lt.
  rules.push_back(R("7", "converse of gt (corrected; see catalog.h)",
                    "inv(gt)", "lt", kPr));
  rules.push_back(R("8", "constant function absorbs composition",
                    "Kf(?k) o ?f", "Kf(?k)", kFn));
  rules.push_back(R("9", "first projection of a pair former",
                    "pi1 o (?f, ?g)", "?f", kFn));
  rules.push_back(R("10", "second projection of a pair former",
                    "pi2 o (?f, ?g)", "?g", kFn));
  rules.push_back(R("11", "iterate fusion",
                    "iterate(?p, ?f) o iterate(?q, ?g)",
                    "iterate(?q & ?p @ ?g, ?f o ?g)", kFn));
  rules.push_back(R("12", "selection after projection",
                    "iterate(?p, id) o iterate(Kp(T), ?f)",
                    "iterate(?p @ ?f, ?f)", kFn));
  rules.push_back(R("13", "curry a constant comparand",
                    "?p @ (?f, Kf(?k))", "Cp(inv(?p), ?k) @ ?f", kPr));
  rules.push_back(R("14", "oplus distributes over composition",
                    "?p @ ?f o ?g", "?p @ ?f @ ?g", kPr));
  rules.push_back(R("15", "environment-insensitive iter is a conditional",
                    "iter(?p @ pi1, pi2)",
                    "con(?p @ pi1, pi2, Kf({}))", kFn));
  rules.push_back(R("16", "conditional distributes over composition",
                    "con(?p, ?f, ?g) o ?h",
                    "con(?p @ ?h, ?f o ?h, ?g o ?h)", kFn));

  // ----- Figure 8: hidden-join rules -----
  rules.push_back(R(
      "17", "break up a nested iterate (wrapped body)",
      "iterate(Kp(T), (?j, ?g o iter(?p, ?f) o (id, ?h)))",
      "iterate(Kp(T), (?j o pi1, pi2)) o "
      "iterate(Kp(T), (pi1, ?g o pi2)) o "
      "iterate(Kp(T), (pi1, iter(?p, ?f))) o "
      "iterate(Kp(T), (id, ?h))",
      kFn));
  // The g = id reading the paper reaches via rule 2 right-to-left
  // (Section 4.1 footnote 4).
  rules.push_back(R(
      "17b", "break up a nested iterate (bare body)",
      "iterate(Kp(T), (?j, iter(?p, ?f) o (id, ?h)))",
      "iterate(Kp(T), (?j o pi1, pi2)) o "
      "iterate(Kp(T), (pi1, iter(?p, ?f))) o "
      "iterate(Kp(T), (id, ?h))",
      kFn));
  rules.push_back(R("18", "trivial iterate is identity",
                    "iterate(Kp(T), id)", "id", kFn));
  rules.push_back(R(
      "19", "bottom out: pair-with-constant-set becomes nest of join",
      "iterate(Kp(T), (id, Kf(?B))) ! ?A",
      "nest(pi1, pi2) o (join(Kp(T), id), pi1) ! [?A, ?B]", kOb));
  rules.push_back(R(
      "20", "pull nest above an iter-mapping iterate",
      "iterate(Kp(T), (pi1, iter(?p, ?f))) o nest(pi1, pi2)",
      "nest(pi1, pi2) o (iterate(?p, (pi1, ?f)) x id)", kFn));
  rules.push_back(R(
      "21", "pull nest above a flattening iterate",
      "iterate(Kp(T), (pi1, flat o pi2)) o nest(pi1, pi2)",
      "nest(pi1, pi2) o (unnest(pi1, pi2) x id)", kFn));
  rules.push_back(R(
      "22", "pull unnest above a filtering map",
      "(iterate(?p, (pi1, ?f)) x id) o (unnest(pi1, pi2) x id)",
      "(unnest(pi1, pi2) x id) o "
      "(iterate(Kp(T), (pi1, iter(?p, ?f))) x id)",
      kFn));
  // The (pi1, pi2) = id reading of rule 22, reached in the paper via rule 4
  // right-to-left (the pull-up-nest cleanup collapses iterate(p, (pi1,
  // pi2)) to iterate(p, id), which rule 22's pattern cannot see).
  rules.push_back(R(
      "22b", "pull unnest above a filter",
      "(iterate(?p, id) x id) o (unnest(pi1, pi2) x id)",
      "(unnest(pi1, pi2) x id) o "
      "(iterate(Kp(T), (pi1, iter(?p, pi2))) x id)",
      kFn));
  rules.push_back(R(
      "23", "merge adjacent unnests",
      "(unnest(pi1, pi2) x id) o (unnest(pi1, pi2) x id)",
      "(unnest(pi1, pi2) x id) o "
      "(iterate(Kp(T), (pi1, flat o pi2)) x id)",
      kFn));
  rules.push_back(R(
      "24", "absorb an iterate into the join below it",
      "(iterate(?p, ?f) x id) o (join(?q, ?g), pi1)",
      "(join(?q & ?p @ ?g, ?f o ?g), pi1)", kFn));
  return rules;
}

Rule PaperRule7AsPublished() {
  return R("7-as-published", "rule 7 exactly as printed in the paper "
           "(unsound: differs from inv(gt) on equal arguments)",
           "inv(gt)", "leq", kPr);
}

std::vector<Rule> NormalizationRules() {
  std::vector<Rule> rules;
  rules.push_back(R("norm.assoc", "right-associate composition",
                    "(?f o ?g) o ?h", "?f o ?g o ?h", kFn));
  rules.push_back(R("norm.unfold", "apply a composition pointwise",
                    "(?f o ?g) ! ?x", "?f ! ?g ! ?x", kOb));
  rules.push_back(R("norm.fold", "refold nested applications",
                    "?f ! ?g ! ?x", "(?f o ?g) ! ?x", kOb));
  rules.push_back(R("norm.id-apply", "identity application",
                    "id ! ?x", "?x", kOb));
  return rules;
}

std::vector<Rule> ExtendedRules() {
  std::vector<Rule> rules;
  // --- Pair and product laws ---
  rules.push_back(R("ext.pi1-product", "project first of a product",
                    "pi1 o (?f x ?g)", "?f o pi1", kFn));
  rules.push_back(R("ext.pi2-product", "project second of a product",
                    "pi2 o (?f x ?g)", "?g o pi2", kFn));
  rules.push_back(R("ext.product-pair", "product after pair former",
                    "(?f x ?g) o (?h, ?j)", "(?f o ?h, ?g o ?j)", kFn));
  rules.push_back(R("ext.pair-compose", "pair former after a function",
                    "(?f, ?g) o ?h", "(?f o ?h, ?g o ?h)", kFn));
  rules.push_back(R("ext.product-compose", "products compose pointwise",
                    "(?f x ?g) o (?h x ?j)", "(?f o ?h) x (?g o ?j)", kFn));
  rules.push_back(R("ext.product-id", "product of identities",
                    "id x id", "id", kFn));
  rules.push_back(R("ext.curry-compose", "precompose under currying",
                    "Cf(?f, ?k) o ?g", "Cf(?f o (id x ?g), ?k)", kFn));
  rules.push_back(R("ext.pair-eta", "projections repackage a pair",
                    "(pi1 o ?f, pi2 o ?f)", "?f", kFn));
  rules.push_back(R("ext.swap-swap", "pair swap is an involution",
                    "(pi2, pi1) o (pi2, pi1)", "id", kFn));
  rules.push_back(R("ext.swap-swap-chain",
                    "pair-swap involution, mid-chain",
                    "(pi2, pi1) o (pi2, pi1) o ?g", "?g", kFn));
  rules.push_back(R("ext.pair-to-product", "componentwise pair is a product",
                    "(?f o pi1, ?g o pi2)", "?f x ?g", kFn));
  rules.push_back(R("ext.pair-to-product-left",
                    "left-componentwise pair is a product",
                    "(?f o pi1, pi2)", "?f x id", kFn));
  rules.push_back(R("ext.pair-to-product-right",
                    "right-componentwise pair is a product",
                    "(pi1, ?g o pi2)", "id x ?g", kFn));

  // --- Predicate logic (the "convert predicates to CNF" block draws on
  //     these) ---
  rules.push_back(R("ext.and-idem", "conjunction idempotence",
                    "?p & ?p", "?p", kPr));
  rules.push_back(R("ext.or-idem", "disjunction idempotence",
                    "?p | ?p", "?p", kPr));
  rules.push_back(R("ext.and-false", "false conjunct dominates",
                    "Kp(F) & ?p", "Kp(F)", kPr));
  rules.push_back(R("ext.or-true", "true disjunct dominates",
                    "Kp(T) | ?p", "Kp(T)", kPr));
  rules.push_back(R("ext.or-false", "false disjunct elimination",
                    "Kp(F) | ?p", "?p", kPr));
  rules.push_back(R("ext.and-true-right", "true right conjunct elimination",
                    "?p & Kp(T)", "?p", kPr));
  rules.push_back(R("ext.not-not", "double negation",
                    "not(not(?p))", "?p", kPr));
  rules.push_back(R("ext.demorgan-and", "De Morgan over conjunction",
                    "not(?p & ?q)", "not(?p) | not(?q)", kPr));
  rules.push_back(R("ext.demorgan-or", "De Morgan over disjunction",
                    "not(?p | ?q)", "not(?p) & not(?q)", kPr));
  rules.push_back(R("ext.cnf-dist-left", "distribute or over and (left)",
                    "?p | (?q & ?p2)", "(?p | ?q) & (?p | ?p2)", kPr));
  rules.push_back(R("ext.cnf-dist-right", "distribute or over and (right)",
                    "(?q & ?p2) | ?p", "(?q | ?p) & (?p2 | ?p)", kPr));
  rules.push_back(R("ext.and-oplus", "oplus distributes over and",
                    "(?p & ?q) @ ?f", "(?p @ ?f) & (?q @ ?f)", kPr));
  rules.push_back(R("ext.or-oplus", "oplus distributes over or",
                    "(?p | ?q) @ ?f", "(?p @ ?f) | (?q @ ?f)", kPr));
  rules.push_back(R("ext.not-oplus", "oplus commutes with negation",
                    "not(?p) @ ?f", "not(?p @ ?f)", kPr));
  rules.push_back(R("ext.and-comm", "conjunction commutes",
                    "?p & ?q", "?q & ?p", kPr));
  rules.push_back(R("ext.or-comm", "disjunction commutes",
                    "?p | ?q", "?q | ?p", kPr));
  rules.push_back(R("ext.and-assoc", "conjunction associates",
                    "(?p & ?q) & ?p2", "?p & (?q & ?p2)", kPr));
  rules.push_back(R("ext.or-assoc", "disjunction associates",
                    "(?p | ?q) | ?p2", "?p | (?q | ?p2)", kPr));
  rules.push_back(R("ext.absorb-and", "absorption",
                    "?p & (?p | ?q)", "?p", kPr));
  rules.push_back(R("ext.absorb-or", "absorption (dual)",
                    "?p | ?p & ?q", "?p", kPr));
  rules.push_back(R("ext.and-contradiction", "p and not p is false",
                    "?p & not(?p)", "Kp(F)", kPr));
  rules.push_back(R("ext.or-excluded-middle", "p or not p is true",
                    "?p | not(?p)", "Kp(T)", kPr));

  // --- Inverse (converse) and complement facts ---
  rules.push_back(R("ext.inv-inv", "converse is an involution",
                    "inv(inv(?p))", "?p", kPr));
  rules.push_back(R("ext.inv-eq", "equality is symmetric",
                    "inv(eq)", "eq", kPr));
  rules.push_back(R("ext.inv-neq", "disequality is symmetric",
                    "inv(neq)", "neq", kPr));
  rules.push_back(R("ext.inv-lt", "converse of lt", "inv(lt)", "gt", kPr));
  rules.push_back(R("ext.inv-leq", "converse of leq",
                    "inv(leq)", "geq", kPr));
  rules.push_back(R("ext.inv-geq", "converse of geq",
                    "inv(geq)", "leq", kPr));
  rules.push_back(R("ext.inv-and", "converse distributes over and",
                    "inv(?p & ?q)", "inv(?p) & inv(?q)", kPr));
  rules.push_back(R("ext.inv-or", "converse distributes over or",
                    "inv(?p | ?q)", "inv(?p) | inv(?q)", kPr));
  rules.push_back(R("ext.inv-swap", "converse swaps a pair former",
                    "inv(?p) @ (?f, ?g)", "?p @ (?g, ?f)", kPr));
  rules.push_back(R("ext.inv-product", "converse pushes through a product",
                    "inv(?p @ (?f x ?g))", "inv(?p) @ (?g x ?f)", kPr));
  rules.push_back(R("ext.not-gt", "complement of gt over a total order",
                    "not(gt)", "leq", kPr));
  rules.push_back(R("ext.not-lt", "complement of lt", "not(lt)", "geq",
                    kPr));
  rules.push_back(R("ext.not-leq", "complement of leq", "not(leq)", "gt",
                    kPr));
  rules.push_back(R("ext.not-geq", "complement of geq", "not(geq)", "lt",
                    kPr));
  rules.push_back(R("ext.not-eq", "complement of eq", "not(eq)", "neq",
                    kPr));

  // --- Conditional laws ---
  rules.push_back(R("ext.con-true", "conditional on true",
                    "con(Kp(T), ?f, ?g)", "?f", kFn));
  rules.push_back(R("ext.con-false", "conditional on false",
                    "con(Kp(F), ?f, ?g)", "?g", kFn));
  rules.push_back(R("ext.con-same", "conditional with equal branches",
                    "con(?p, ?f, ?f)", "?f", kFn));
  rules.push_back(R("ext.con-postcompose",
                    "compose distributes into a conditional",
                    "?h o con(?p, ?f, ?g)",
                    "con(?p, ?h o ?f, ?h o ?g)", kFn));

  // --- Iterate and set-operator laws ---
  rules.push_back(R("ext.iterate-false", "empty selection",
                    "iterate(Kp(F), ?f)", "Kf({})", kFn));
  rules.push_back(R("ext.iterate-empty", "iterate over the empty set",
                    "iterate(?p, ?f) o Kf({})", "Kf({})", kFn));
  rules.push_back(R("ext.union-comm", "union commutes",
                    "union ! [?x, ?y]", "union ! [?y, ?x]", kOb));
  rules.push_back(R("ext.intersect-comm", "intersection commutes",
                    "intersect ! [?x, ?y]", "intersect ! [?y, ?x]", kOb));
  rules.push_back(R("ext.union-idem", "union idempotence",
                    "union ! [?x, ?x]", "?x", kOb));
  rules.push_back(R("ext.intersect-idem", "intersection idempotence",
                    "intersect ! [?x, ?x]", "?x", kOb));
  rules.push_back(R("ext.union-assoc", "union associates",
                    "union ! [union ! [?x, ?y], ?z]",
                    "union ! [?x, union ! [?y, ?z]]", kOb));
  rules.push_back(R(
      "ext.intersect-distrib", "intersection distributes over union",
      "intersect ! [?x, union ! [?y, ?z]]",
      "union ! [intersect ! [?x, ?y], intersect ! [?x, ?z]]", kOb));
  rules.push_back(R("ext.flat-union", "flatten distributes over union",
                    "flat ! (union ! [?x, ?y])",
                    "union ! [flat ! ?x, flat ! ?y]", kOb));
  rules.push_back(R("ext.iterate-union",
                    "selection/projection distributes over union",
                    "iterate(?p, ?f) ! (union ! [?x, ?y])",
                    "union ! [iterate(?p, ?f) ! ?x, iterate(?p, ?f) ! ?y]",
                    kOb));

  // --- Join laws (Section 5's predicate-sorting discussion) ---
  rules.push_back(R("ext.join-commute", "commute a join",
                    "join(?p, ?f)",
                    "join(inv(?p), ?f o (pi2, pi1)) o (pi2, pi1)", kFn));
  rules.push_back(R(
      "ext.select-past-join-left",
      "push a first-component selection below the join",
      "join(?q & ?p @ pi1, ?f)",
      "join(?q, ?f) o (iterate(?p, id) x id)", kFn));
  rules.push_back(R(
      "ext.select-past-join-right",
      "push a second-component selection below the join",
      "join(?q & ?p @ pi2, ?f)",
      "join(?q, ?f) o (id x iterate(?p, id))", kFn));

  // --- Set-monad and loop-motion laws ---
  rules.push_back(R("ext.flat-flat", "flatten associativity (monad law)",
                    "flat o flat", "flat o iterate(Kp(T), flat)", kFn));
  rules.push_back(R("ext.map-past-flat", "map distributes over flatten",
                    "iterate(?p, ?f) o flat",
                    "flat o iterate(Kp(T), iterate(?p, ?f))", kFn));
  rules.push_back(R("ext.map-past-union",
                    "map/filter distributes over union",
                    "iterate(?p, ?f) o union",
                    "union o (iterate(?p, ?f) x iterate(?p, ?f))", kFn));
  rules.push_back(R("ext.flat-empty", "flatten of nothing",
                    "flat o Kf({})", "Kf({})", kFn));
  rules.push_back(R("ext.unnest-map", "unnest absorbs a preceding map",
                    "unnest(?f, ?g) o iterate(Kp(T), ?h)",
                    "unnest(?f o ?h, ?g o ?h)", kFn));
  rules.push_back(R("ext.project-into-join",
                    "a projection after a join folds into it",
                    "iterate(Kp(T), ?f) o join(?p, ?g)",
                    "join(?p, ?f o ?g)", kFn));
  rules.push_back(R("ext.select-into-join",
                    "a selection after a join folds into its predicate",
                    "iterate(?p, id) o join(?q, ?g)",
                    "join(?q & ?p @ ?g, ?g)", kFn));
  rules.push_back(R("ext.map-into-join-inputs",
                    "maps on both join inputs fold into the join",
                    "join(?p, ?f) o (iterate(Kp(T), ?g) x "
                    "iterate(Kp(T), ?h))",
                    "join(?p @ (?g x ?h), ?f o (?g x ?h))", kFn));
  rules.push_back(R("ext.nest-keys",
                    "the paper's NULL-free nest preserves the key set",
                    "iterate(Kp(T), pi1) o nest(pi1, pi2)", "pi2", kFn));
  rules.push_back(R("ext.iter-trivial", "environment-blind iter is pi2",
                    "iter(Kp(T), pi2)", "pi2", kFn));

  // --- Currying expansions (definitional) ---
  rules.push_back(R("ext.curry-pred-expand", "Cp unfolds to a pair former",
                    "Cp(?p, ?k) @ ?f", "?p @ (Kf(?k), ?f)", kPr));
  rules.push_back(R("ext.curry-fn-expand", "Cf unfolds to a pair former",
                    "Cf(?f, ?k)", "?f o (Kf(?k), id)", kFn));
  rules.push_back(R("ext.con-flip", "conditional branch swap",
                    "con(?p, ?f, ?g)", "con(not(?p), ?g, ?f)", kFn));
  rules.push_back(R("ext.eq-refl", "equality is reflexive",
                    "eq @ (?f, ?f)", "Kp(T)", kPr));

  // --- The paper's Section 4.2 precondition example ---
  rules.push_back(RC(
      "ext.injective-intersect",
      "an injective map commutes with intersection",
      "intersect o (iterate(Kp(T), ?f) x iterate(Kp(T), ?f))",
      "iterate(Kp(T), ?f) o intersect", kFn,
      {{"injective", "?f"}}));
  // The count-bug connection: over SETS, a map changes cardinality unless
  // it is injective. (Over bags it never does -- see BagRules.)
  rules.push_back(RC("ext.card-map-injective",
                     "an injective map preserves set cardinality",
                     "card o iterate(Kp(T), ?f)", "card", kFn,
                     {{"injective", "?f"}}));
  return rules;
}

std::vector<Rule> BagRules() {
  // The Section 6 bag extension: iterate/flat/join are polymorphic over the
  // collection kind at run time; `distinct` deduplicates into a set,
  // `tobag` forgets set-ness, `card` counts with multiplicity. These rules
  // defer or cancel duplicate elimination. They involve run-time collection
  // polymorphism that the structural type system does not model, so they
  // are verified by dedicated property tests (bag_test.cc) instead of the
  // typed randomized verifier.
  std::vector<Rule> rules;
  rules.push_back(R("bag.distinct-idem", "deduplication is idempotent",
                    "distinct o distinct", "distinct", kFn));
  rules.push_back(R("bag.distinct-tobag", "dedup cancels a bag upcast",
                    "distinct o tobag", "distinct", kFn));
  rules.push_back(R("bag.card-tobag",
                    "bag upcast preserves cardinality",
                    "card o tobag", "card", kFn));
  rules.push_back(R("bag.card-map",
                    "a bag map always preserves cardinality (contrast with "
                    "ext.card-map-injective)",
                    "card o iterate(Kp(T), ?f) o tobag", "card", kFn));
  rules.push_back(R("bag.defer-dedup-map",
                    "duplicate elimination defers past a map",
                    "distinct o iterate(?p, ?f) o distinct",
                    "distinct o iterate(?p, ?f)", kFn));
  rules.push_back(R("bag.defer-dedup-flat",
                    "duplicate elimination defers past a flatten",
                    "distinct o flat o iterate(Kp(T), distinct)",
                    "distinct o flat", kFn));
  rules.push_back(R("bag.eager-dedup",
                    "a set-level map is a bag map plus one final dedup",
                    "iterate(?p, ?f) o distinct",
                    "distinct o iterate(?p, ?f)", kFn));
  // Chain-tail readings for right-associated composition chains (the same
  // device as rules 17b/22b).
  rules.push_back(R("bag.eager-dedup-chain",
                    "eager-dedup, mid-chain",
                    "iterate(?p, ?f) o distinct o ?g",
                    "distinct o iterate(?p, ?f) o ?g", kFn));
  rules.push_back(R("bag.distinct-idem-chain",
                    "dedup idempotence, mid-chain",
                    "distinct o distinct o ?g", "distinct o ?g", kFn));
  return rules;
}

std::vector<Rule> AllCatalogRules() {
  std::vector<Rule> rules = PaperRules();
  for (Rule& rule : NormalizationRules()) rules.push_back(std::move(rule));
  for (Rule& rule : ExtendedRules()) rules.push_back(std::move(rule));
  return rules;
}

StatusOr<const Rule*> TryFindRule(const std::vector<Rule>& rules,
                                  const std::string& id) {
  for (const Rule& rule : rules) {
    if (rule.id == id) return &rule;
  }
  return NotFoundError("no rule with id '" + id + "' in a catalog of " +
                       std::to_string(rules.size()) + " rules");
}

const Rule& FindRule(const std::vector<Rule>& rules, const std::string& id) {
  auto found = TryFindRule(rules, id);
  KOLA_CHECK_OK(found.status());
  return *found.value();
}

}  // namespace kola
