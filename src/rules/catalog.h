#ifndef KOLA_RULES_CATALOG_H_
#define KOLA_RULES_CATALOG_H_

#include <string>
#include <vector>

#include "rewrite/rule.h"

namespace kola {

/// The paper's rules 1-24 (Figures 4, 5 and 8), under their original
/// numbering, plus "17b" (the g = id reading of rule 17 that the paper
/// obtains by first applying rule 2 right-to-left; see Section 4.1,
/// footnote 4).
///
/// One deliberate correction: the paper states rule 7 as `inv(gt) => leq`.
/// Rule 13 forces `inv` to denote the *converse* (argument swap) -- that is
/// the only reading under which rule 13 holds for every predicate -- and the
/// converse of `gt` is `lt`, not `leq` (they differ exactly on equal
/// arguments). We ship the sound `inv(gt) => lt`; the as-published variant
/// is available from PaperRule7AsPublished() and is flagged UNSOUND by the
/// verifier (bench_rule_pool reproduces this).
std::vector<Rule> PaperRules();

/// The as-published (unsound) reading of rule 7, for the verifier demo.
Rule PaperRule7AsPublished();

/// Structural normalization rules used by strategies:
///   norm.assoc        (f o g) o h => f o (g o h)
///   norm.unfold       (f o g) ! x => f ! (g ! x)
///   norm.fold         f ! (g ! x) => (f o g) ! x
///   norm.id-apply     id ! x => x
std::vector<Rule> NormalizationRules();

/// Extended pool of generally applicable algebraic rules (ext.*): pair /
/// product laws, predicate logic (including the CNF distribution rules),
/// inverse and complement facts, conditional laws, iterate and set-operator
/// laws, join commutation and selection pushdown, and the
/// injectivity-guarded intersection rule from Section 4.2.
std::vector<Rule> ExtendedRules();

/// The Section 6 bag-extension rules (bag.*): duplicate-elimination
/// deferral via `distinct` / `tobag` over the run-time collection-
/// polymorphic formers. Verified by dedicated property tests (bag_test)
/// rather than the typed verifier; NOT included in AllCatalogRules.
std::vector<Rule> BagRules();

/// PaperRules + NormalizationRules + ExtendedRules (the typed-verifiable
/// pool).
std::vector<Rule> AllCatalogRules();

/// Looks up a rule by id. NOT_FOUND when absent -- the right entry point
/// whenever the id comes from user input (shell commands, COKO text,
/// replay files).
StatusOr<const Rule*> TryFindRule(const std::vector<Rule>& rules,
                                  const std::string& id);

/// Finds a rule by id; KOLA_CHECKs that it exists. Only for compile-time
/// constant ids (a miss is a library bug); use TryFindRule for ids that
/// originate outside the library.
const Rule& FindRule(const std::vector<Rule>& rules, const std::string& id);

}  // namespace kola

#endif  // KOLA_RULES_CATALOG_H_
