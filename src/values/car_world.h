#ifndef KOLA_VALUES_CAR_WORLD_H_
#define KOLA_VALUES_CAR_WORLD_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "values/database.h"

namespace kola {

/// Parameters for the synthetic instance of the paper's example schema
/// (Person / Address / Vehicle, Section 2.1). All sizes are upper bounds on
/// per-object fan-out; actual fan-outs are drawn uniformly.
struct CarWorldOptions {
  int64_t num_persons = 50;
  int64_t num_addresses = 30;
  int64_t num_vehicles = 40;
  int64_t max_children = 3;
  int64_t max_cars = 2;
  int64_t max_garages = 2;
  int64_t min_age = 1;
  int64_t max_age = 90;
  uint64_t seed = 42;
};

/// Builds a Database implementing the paper's schema:
///
///   Person:  addr -> Address, age -> int, name -> string,
///            child -> set<Person>, cars -> set<Vehicle>,
///            grgs -> set<Address>
///   Address: city -> string, street -> string
///   Vehicle: make -> string, year -> int
///
/// with extents "P" (all persons), "V" (all vehicles), "A" (all addresses),
/// plus small fixed extents "Nums" (integers) useful in tests.
std::unique_ptr<Database> BuildCarWorld(const CarWorldOptions& options);

}  // namespace kola

#endif  // KOLA_VALUES_CAR_WORLD_H_
