#include "values/car_world.h"

#include <string>
#include <vector>

#include "common/macros.h"

namespace kola {

namespace {

const char* const kCities[] = {"Providence", "Boston",  "Montreal",
                               "New Haven",  "Cambridge", "Worcester"};
const char* const kMakes[] = {"Saab", "Volvo", "Honda", "Ford", "Fiat"};

}  // namespace

std::unique_ptr<Database> BuildCarWorld(const CarWorldOptions& options) {
  auto db = std::make_unique<Database>();
  Rng rng(options.seed);

  int32_t person = db->DefineClass("Person");
  int32_t address = db->DefineClass("Address");
  int32_t vehicle = db->DefineClass("Vehicle");

  KOLA_CHECK_OK(db->DefineAttribute(person, "addr"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "age"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "name"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "child"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "cars"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "grgs"));
  KOLA_CHECK_OK(db->DefineAttribute(address, "city"));
  KOLA_CHECK_OK(db->DefineAttribute(address, "street"));
  KOLA_CHECK_OK(db->DefineAttribute(vehicle, "make"));
  KOLA_CHECK_OK(db->DefineAttribute(vehicle, "year"));

  std::vector<Value> addresses;
  addresses.reserve(options.num_addresses);
  for (int64_t i = 0; i < options.num_addresses; ++i) {
    Value a = db->NewObject(address);
    KOLA_CHECK_OK(db->SetAttribute(
        a, "city",
        Value::Str(kCities[rng.Index(std::size(kCities))])));
    KOLA_CHECK_OK(db->SetAttribute(
        a, "street", Value::Str(rng.Identifier(6) + " st")));
    addresses.push_back(a);
  }

  std::vector<Value> vehicles;
  vehicles.reserve(options.num_vehicles);
  for (int64_t i = 0; i < options.num_vehicles; ++i) {
    Value v = db->NewObject(vehicle);
    KOLA_CHECK_OK(db->SetAttribute(
        v, "make", Value::Str(kMakes[rng.Index(std::size(kMakes))])));
    KOLA_CHECK_OK(
        db->SetAttribute(v, "year", Value::Int(rng.Uniform(1970, 1996))));
    vehicles.push_back(v);
  }

  std::vector<Value> persons;
  persons.reserve(options.num_persons);
  for (int64_t i = 0; i < options.num_persons; ++i) {
    persons.push_back(db->NewObject(person));
  }
  for (const Value& p : persons) {
    KOLA_CHECK_OK(db->SetAttribute(
        p, "age", Value::Int(rng.Uniform(options.min_age, options.max_age))));
    KOLA_CHECK_OK(db->SetAttribute(p, "name", Value::Str(rng.Identifier(5))));
    if (!addresses.empty()) {
      KOLA_CHECK_OK(db->SetAttribute(p, "addr",
                                     addresses[rng.Index(addresses.size())]));
    }

    std::vector<Value> children;
    if (!persons.empty()) {
      int64_t n = rng.Uniform(0, options.max_children);
      for (int64_t c = 0; c < n; ++c) {
        children.push_back(persons[rng.Index(persons.size())]);
      }
    }
    KOLA_CHECK_OK(db->SetAttribute(p, "child", Value::MakeSet(children)));

    std::vector<Value> cars;
    if (!vehicles.empty()) {
      int64_t n = rng.Uniform(0, options.max_cars);
      for (int64_t c = 0; c < n; ++c) {
        cars.push_back(vehicles[rng.Index(vehicles.size())]);
      }
    }
    KOLA_CHECK_OK(db->SetAttribute(p, "cars", Value::MakeSet(cars)));

    std::vector<Value> garages;
    if (!addresses.empty()) {
      int64_t n = rng.Uniform(0, options.max_garages);
      for (int64_t g = 0; g < n; ++g) {
        garages.push_back(addresses[rng.Index(addresses.size())]);
      }
    }
    KOLA_CHECK_OK(db->SetAttribute(p, "grgs", Value::MakeSet(garages)));
  }

  KOLA_CHECK_OK(db->DefineExtent("P", Value::MakeSet(persons)));
  KOLA_CHECK_OK(db->DefineExtent("V", Value::MakeSet(vehicles)));
  KOLA_CHECK_OK(db->DefineExtent("A", Value::MakeSet(addresses)));

  std::vector<Value> nums;
  for (int64_t i = 0; i < 10; ++i) nums.push_back(Value::Int(i));
  KOLA_CHECK_OK(db->DefineExtent("Nums", Value::MakeSet(nums)));

  // Arithmetic helper primitives used by tests and the rule verifier's
  // random function generator (they give int -> int functions some variety
  // beyond constants and identity).
  auto int_fn = [](int64_t (*op)(int64_t)) {
    return [op](const Database&, const Value& v) -> StatusOr<Value> {
      KOLA_ASSIGN_OR_RETURN(int64_t i, v.AsInt());
      return Value::Int(op(i));
    };
  };
  db->RegisterFunction("succ", int_fn([](int64_t i) { return i + 1; }));
  db->RegisterFunction("dbl", int_fn([](int64_t i) { return i * 2; }));
  db->RegisterFunction("neg", int_fn([](int64_t i) { return -i; }));

  return db;
}

}  // namespace kola
