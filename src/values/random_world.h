#ifndef KOLA_VALUES_RANDOM_WORLD_H_
#define KOLA_VALUES_RANDOM_WORLD_H_

#include <cstdint>
#include <memory>

#include "values/database.h"

namespace kola {

/// Parameters for a randomized instance of the car-world schema
/// (Person / Address / Vehicle -- the same classes, attributes and extent
/// names as BuildCarWorld, so SchemaTypes::CarWorld() types queries over
/// it). Unlike the fixed demo worlds, everything here is drawn from the
/// seed: extent sizes (including EMPTY extents), attribute domains
/// (including deliberately tiny, duplicate-heavy ones), and fan-outs.
/// The soundness harness runs every trial against a fresh random world so
/// that optimizer bugs that only show up on particular data shapes --
/// empty inputs, heavy duplication, deep sharing -- are reachable.
struct RandomWorldOptions {
  uint64_t seed = 1;

  /// Overall size dial, >= 0. Extent sizes are drawn from [0, 4 * scale]
  /// (so scale 0 forces every extent empty). The failure shrinker lowers
  /// this while a divergence still reproduces.
  int scale = 3;

  /// Draws a full option set (scale, domain skew) from `seed`. About one
  /// world in five gets an empty extent; about one in three gets
  /// duplicate-heavy attribute domains (two distinct ages, one city).
  static RandomWorldOptions FromSeed(uint64_t seed);
};

/// Builds the randomized world. Deterministic in the options (same seed +
/// scale => identical database).
std::unique_ptr<Database> BuildRandomWorld(const RandomWorldOptions& options);

/// Convenience overload: BuildRandomWorld(RandomWorldOptions::FromSeed(s)).
std::unique_ptr<Database> BuildRandomWorld(uint64_t seed);

}  // namespace kola

#endif  // KOLA_VALUES_RANDOM_WORLD_H_
