#include "values/database.h"

#include "common/macros.h"

namespace kola {

int32_t Database::DefineClass(const std::string& name) {
  auto it = class_ids_.find(name);
  if (it != class_ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(classes_.size());
  classes_.push_back(ClassInfo{name, {}, {}});
  class_ids_[name] = id;
  return id;
}

StatusOr<int32_t> Database::ClassId(const std::string& name) const {
  auto it = class_ids_.find(name);
  if (it == class_ids_.end()) {
    return NotFoundError("unknown class: " + name);
  }
  return it->second;
}

StatusOr<std::string> Database::ClassName(int32_t class_id) const {
  if (class_id < 0 || static_cast<size_t>(class_id) >= classes_.size()) {
    return NotFoundError("bad class id");
  }
  return classes_[class_id].name;
}

Status Database::DefineAttribute(int32_t class_id,
                                 const std::string& attribute) {
  if (class_id < 0 || static_cast<size_t>(class_id) >= classes_.size()) {
    return NotFoundError("bad class id");
  }
  ClassInfo& info = classes_[class_id];
  if (info.attribute_index.count(attribute) > 0) return Status::OK();
  int32_t index = static_cast<int32_t>(info.attribute_index.size());
  info.attribute_index[attribute] = index;
  for (auto& slots : info.objects) slots.resize(info.attribute_index.size());
  return Status::OK();
}

Value Database::NewObject(int32_t class_id) {
  KOLA_CHECK(class_id >= 0 &&
             static_cast<size_t>(class_id) < classes_.size());
  ClassInfo& info = classes_[class_id];
  int64_t id = static_cast<int64_t>(info.objects.size());
  info.objects.emplace_back(info.attribute_index.size());
  return Value::Object(class_id, id);
}

StatusOr<const Database::ClassInfo*> Database::ClassForObject(
    const Value& object) const {
  if (!object.is_object()) {
    return TypeError("expected object, got " + object.ToString());
  }
  int32_t cid = object.object_class();
  if (cid < 0 || static_cast<size_t>(cid) >= classes_.size()) {
    return NotFoundError("object has unknown class");
  }
  const ClassInfo& info = classes_[cid];
  if (object.object_id() < 0 ||
      static_cast<size_t>(object.object_id()) >= info.objects.size()) {
    return NotFoundError("dangling object reference " + object.ToString());
  }
  return &info;
}

Status Database::SetAttribute(const Value& object,
                              const std::string& attribute, Value value) {
  KOLA_ASSIGN_OR_RETURN(const ClassInfo* info, ClassForObject(object));
  auto it = info->attribute_index.find(attribute);
  if (it == info->attribute_index.end()) {
    return NotFoundError("class " + info->name + " has no attribute " +
                         attribute);
  }
  // const_cast is confined here: ClassForObject centralizes validation and
  // the registry itself is non-const in this mutating member.
  auto& slots =
      const_cast<ClassInfo*>(info)->objects[object.object_id()];
  slots[it->second] = std::move(value);
  return Status::OK();
}

StatusOr<Value> Database::GetAttribute(const Value& object,
                                       const std::string& attribute) const {
  KOLA_ASSIGN_OR_RETURN(const ClassInfo* info, ClassForObject(object));
  auto it = info->attribute_index.find(attribute);
  if (it == info->attribute_index.end()) {
    return NotFoundError("class " + info->name + " has no attribute " +
                         attribute);
  }
  return info->objects[object.object_id()][it->second];
}

bool Database::HasAttribute(const Value& object,
                            const std::string& attribute) const {
  auto info = ClassForObject(object);
  if (!info.ok()) return false;
  return (*info)->attribute_index.count(attribute) > 0;
}

size_t Database::ObjectCount(int32_t class_id) const {
  KOLA_CHECK(class_id >= 0 &&
             static_cast<size_t>(class_id) < classes_.size());
  return classes_[class_id].objects.size();
}

Status Database::DefineExtent(const std::string& name, Value set) {
  if (!set.is_set()) {
    return TypeError("extent " + name + " must be a set");
  }
  extents_[name] = std::move(set);
  return Status::OK();
}

StatusOr<Value> Database::Extent(const std::string& name) const {
  auto it = extents_.find(name);
  if (it == extents_.end()) {
    return NotFoundError("unknown extent: " + name);
  }
  return it->second;
}

bool Database::HasExtent(const std::string& name) const {
  return extents_.count(name) > 0;
}

std::vector<std::string> Database::ExtentNames() const {
  std::vector<std::string> names;
  names.reserve(extents_.size());
  for (const auto& [name, unused] : extents_) names.push_back(name);
  return names;
}

void Database::RegisterFunction(const std::string& name, ComputedFn fn) {
  computed_[name] = std::move(fn);
}

bool Database::HasComputedFunction(const std::string& name) const {
  return computed_.count(name) > 0;
}

StatusOr<Value> Database::CallFunction(const std::string& name,
                                       const Value& argument) const {
  auto it = computed_.find(name);
  if (it != computed_.end()) return it->second(*this, argument);
  if (argument.is_object()) return GetAttribute(argument, name);
  return NotFoundError("no function or attribute named " + name +
                       " applicable to " + argument.ToString());
}

}  // namespace kola
