#include "values/random_world.h"

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace kola {

namespace {

const char* const kCities[] = {"Providence", "Boston", "Montreal",
                               "New Haven"};
const char* const kMakes[] = {"Saab", "Volvo", "Honda", "Ford"};

/// Draws a set of up to `max_fanout` references from `pool` (empty when the
/// pool is empty). Duplicates in the draw collapse via set semantics, which
/// is exactly the sharing the optimizer must respect.
Value DrawRefs(Rng& rng, const std::vector<Value>& pool, int64_t max_fanout) {
  std::vector<Value> refs;
  if (!pool.empty()) {
    int64_t n = rng.Uniform(0, max_fanout);
    for (int64_t i = 0; i < n; ++i) {
      refs.push_back(pool[rng.Index(pool.size())]);
    }
  }
  return Value::MakeSet(std::move(refs));
}

}  // namespace

RandomWorldOptions RandomWorldOptions::FromSeed(uint64_t seed) {
  RandomWorldOptions options;
  options.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  options.scale = static_cast<int>(rng.Uniform(1, 4));
  return options;
}

std::unique_ptr<Database> BuildRandomWorld(const RandomWorldOptions& options) {
  auto db = std::make_unique<Database>();
  Rng rng(options.seed);

  int32_t person = db->DefineClass("Person");
  int32_t address = db->DefineClass("Address");
  int32_t vehicle = db->DefineClass("Vehicle");

  KOLA_CHECK_OK(db->DefineAttribute(person, "addr"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "age"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "name"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "child"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "cars"));
  KOLA_CHECK_OK(db->DefineAttribute(person, "grgs"));
  KOLA_CHECK_OK(db->DefineAttribute(address, "city"));
  KOLA_CHECK_OK(db->DefineAttribute(address, "street"));
  KOLA_CHECK_OK(db->DefineAttribute(vehicle, "make"));
  KOLA_CHECK_OK(db->DefineAttribute(vehicle, "year"));

  int64_t cap = 4 * static_cast<int64_t>(options.scale);
  // Independent size draws so single-empty-extent worlds arise (an empty V
  // next to a populated P is the classic join edge case).
  int64_t num_persons = rng.Uniform(0, cap);
  int64_t num_addresses = rng.Uniform(0, cap);
  int64_t num_vehicles = rng.Uniform(0, cap);

  // Duplicate-heavy worlds: collapse the value domains so that most drawn
  // attribute values (and therefore most projected query results) collide.
  bool duplicate_heavy = rng.Chance(0.33);
  size_t num_cities = duplicate_heavy ? 1 : std::size(kCities);
  size_t num_makes = duplicate_heavy ? 1 : std::size(kMakes);
  int64_t min_age = duplicate_heavy ? 25 : 1;
  int64_t max_age = duplicate_heavy ? 26 : 90;
  int64_t min_year = duplicate_heavy ? 1990 : 1970;
  int64_t max_year = duplicate_heavy ? 1991 : 1996;
  size_t name_length = duplicate_heavy ? 1 : 5;

  std::vector<Value> addresses;
  addresses.reserve(num_addresses);
  for (int64_t i = 0; i < num_addresses; ++i) {
    Value a = db->NewObject(address);
    KOLA_CHECK_OK(db->SetAttribute(
        a, "city", Value::Str(kCities[rng.Index(num_cities)])));
    KOLA_CHECK_OK(db->SetAttribute(
        a, "street", Value::Str(rng.Identifier(name_length) + " st")));
    addresses.push_back(a);
  }

  std::vector<Value> vehicles;
  vehicles.reserve(num_vehicles);
  for (int64_t i = 0; i < num_vehicles; ++i) {
    Value v = db->NewObject(vehicle);
    KOLA_CHECK_OK(db->SetAttribute(v, "make",
                                   Value::Str(kMakes[rng.Index(num_makes)])));
    KOLA_CHECK_OK(
        db->SetAttribute(v, "year", Value::Int(rng.Uniform(min_year,
                                                           max_year))));
    vehicles.push_back(v);
  }

  std::vector<Value> persons;
  persons.reserve(num_persons);
  for (int64_t i = 0; i < num_persons; ++i) {
    persons.push_back(db->NewObject(person));
  }
  for (const Value& p : persons) {
    KOLA_CHECK_OK(db->SetAttribute(p, "age",
                                   Value::Int(rng.Uniform(min_age, max_age))));
    KOLA_CHECK_OK(
        db->SetAttribute(p, "name", Value::Str(rng.Identifier(name_length))));
    if (!addresses.empty()) {
      KOLA_CHECK_OK(db->SetAttribute(p, "addr",
                                     addresses[rng.Index(addresses.size())]));
    }
    KOLA_CHECK_OK(db->SetAttribute(p, "child", DrawRefs(rng, persons, 3)));
    KOLA_CHECK_OK(db->SetAttribute(p, "cars", DrawRefs(rng, vehicles, 2)));
    KOLA_CHECK_OK(db->SetAttribute(p, "grgs", DrawRefs(rng, addresses, 2)));
  }

  KOLA_CHECK_OK(db->DefineExtent("P", Value::MakeSet(persons)));
  KOLA_CHECK_OK(db->DefineExtent("V", Value::MakeSet(vehicles)));
  KOLA_CHECK_OK(db->DefineExtent("A", Value::MakeSet(addresses)));

  // A small integer extent; duplicate-heavy worlds shrink it to {0, 1} so
  // generated arithmetic collides constantly.
  std::vector<Value> nums;
  int64_t num_count = duplicate_heavy ? 2 : rng.Uniform(0, 10);
  for (int64_t i = 0; i < num_count; ++i) nums.push_back(Value::Int(i));
  KOLA_CHECK_OK(db->DefineExtent("Nums", Value::MakeSet(nums)));

  // Same arithmetic helpers as the fixed worlds; the generator and the
  // injective-function menu rely on them.
  auto int_fn = [](int64_t (*op)(int64_t)) {
    return [op](const Database&, const Value& v) -> StatusOr<Value> {
      KOLA_ASSIGN_OR_RETURN(int64_t i, v.AsInt());
      return Value::Int(op(i));
    };
  };
  db->RegisterFunction("succ", int_fn([](int64_t i) { return i + 1; }));
  db->RegisterFunction("dbl", int_fn([](int64_t i) { return i * 2; }));
  db->RegisterFunction("neg", int_fn([](int64_t i) { return -i; }));

  return db;
}

std::unique_ptr<Database> BuildRandomWorld(uint64_t seed) {
  return BuildRandomWorld(RandomWorldOptions::FromSeed(seed));
}

}  // namespace kola
