#ifndef KOLA_VALUES_DATABASE_H_
#define KOLA_VALUES_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "values/value.h"

namespace kola {

/// An in-memory object database: classes (ADTs) with named attributes,
/// objects carrying attribute values, named extents (top-level collections
/// such as the paper's P and V), and registered computed functions.
///
/// The KOLA evaluator resolves a schema primitive like `age` by asking the
/// database: registered computed functions are consulted first, then object
/// attributes. This realizes the paper's "functions and predicates found in
/// ADT interfaces included in a schema".
class Database {
 public:
  using ComputedFn =
      std::function<StatusOr<Value>(const Database&, const Value&)>;

  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // --- Schema definition -------------------------------------------------

  /// Defines a class and returns its id. Defining the same name twice
  /// returns the existing id.
  int32_t DefineClass(const std::string& name);

  StatusOr<int32_t> ClassId(const std::string& name) const;
  StatusOr<std::string> ClassName(int32_t class_id) const;

  /// Declares an attribute on a class. Idempotent.
  Status DefineAttribute(int32_t class_id, const std::string& attribute);

  // --- Objects ------------------------------------------------------------

  /// Allocates a fresh object of `class_id` and returns its reference value.
  Value NewObject(int32_t class_id);

  Status SetAttribute(const Value& object, const std::string& attribute,
                      Value value);

  StatusOr<Value> GetAttribute(const Value& object,
                               const std::string& attribute) const;

  /// True when `object`'s class declares `attribute`.
  bool HasAttribute(const Value& object, const std::string& attribute) const;

  /// Number of objects allocated in `class_id`.
  size_t ObjectCount(int32_t class_id) const;

  // --- Extents ------------------------------------------------------------

  /// Binds a named top-level collection (must be a set value).
  Status DefineExtent(const std::string& name, Value set);

  StatusOr<Value> Extent(const std::string& name) const;

  bool HasExtent(const std::string& name) const;

  std::vector<std::string> ExtentNames() const;

  // --- Computed functions ---------------------------------------------------

  /// Registers a computed unary function usable as a KOLA/AQUA primitive.
  void RegisterFunction(const std::string& name, ComputedFn fn);

  /// True when `name` resolves to a computed function (not an attribute).
  bool HasComputedFunction(const std::string& name) const;

  /// Resolves a schema primitive: computed function first, then attribute
  /// access on object arguments.
  StatusOr<Value> CallFunction(const std::string& name,
                               const Value& argument) const;

 private:
  struct ClassInfo {
    std::string name;
    std::map<std::string, int32_t> attribute_index;
    // objects[i] holds the attribute slots of object id i.
    std::vector<std::vector<Value>> objects;
  };

  StatusOr<const ClassInfo*> ClassForObject(const Value& object) const;

  std::vector<ClassInfo> classes_;
  std::map<std::string, int32_t> class_ids_;
  std::map<std::string, Value> extents_;
  std::map<std::string, ComputedFn> computed_;
};

}  // namespace kola

#endif  // KOLA_VALUES_DATABASE_H_
