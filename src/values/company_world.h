#ifndef KOLA_VALUES_COMPANY_WORLD_H_
#define KOLA_VALUES_COMPANY_WORLD_H_

#include <cstdint>
#include <memory>

#include "values/database.h"

namespace kola {

/// A second, independent schema. Nothing in the optimizer, translator or
/// rule catalog references car-world names, and the company-world tests
/// prove it: same rules, same strategies, different schema.
struct CompanyWorldOptions {
  int64_t num_departments = 6;
  int64_t num_employees = 40;
  int64_t num_projects = 10;
  int64_t max_skills = 3;
  int64_t max_members = 6;
  int64_t min_salary = 30'000;
  int64_t max_salary = 200'000;
  uint64_t seed = 7;
};

/// Schema:
///   Dept: dname -> string, head -> Emp
///   Emp:  ename -> string, salary -> int, dept -> Dept,
///         skills -> set<string>
///   Proj: pname -> string, budget -> int, members -> set<Emp>
/// Extents: "D" (departments), "E" (employees), "Proj" (projects).
std::unique_ptr<Database> BuildCompanyWorld(
    const CompanyWorldOptions& options);

}  // namespace kola

#endif  // KOLA_VALUES_COMPANY_WORLD_H_
