#include "values/company_world.h"

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace kola {

namespace {

const char* const kSkills[] = {"c++",  "sql",    "ml",
                               "rust", "devops", "frontend"};
const char* const kDeptNames[] = {"engineering", "sales",   "research",
                                  "support",     "finance", "operations"};

}  // namespace

std::unique_ptr<Database> BuildCompanyWorld(
    const CompanyWorldOptions& options) {
  auto db = std::make_unique<Database>();
  Rng rng(options.seed);

  int32_t dept = db->DefineClass("Dept");
  int32_t emp = db->DefineClass("Emp");
  int32_t proj = db->DefineClass("Proj");

  KOLA_CHECK_OK(db->DefineAttribute(dept, "dname"));
  KOLA_CHECK_OK(db->DefineAttribute(dept, "head"));
  KOLA_CHECK_OK(db->DefineAttribute(emp, "ename"));
  KOLA_CHECK_OK(db->DefineAttribute(emp, "salary"));
  KOLA_CHECK_OK(db->DefineAttribute(emp, "dept"));
  KOLA_CHECK_OK(db->DefineAttribute(emp, "skills"));
  KOLA_CHECK_OK(db->DefineAttribute(proj, "pname"));
  KOLA_CHECK_OK(db->DefineAttribute(proj, "budget"));
  KOLA_CHECK_OK(db->DefineAttribute(proj, "members"));

  std::vector<Value> departments;
  for (int64_t i = 0; i < options.num_departments; ++i) {
    Value d = db->NewObject(dept);
    KOLA_CHECK_OK(db->SetAttribute(
        d, "dname",
        Value::Str(std::string(kDeptNames[i % std::size(kDeptNames)]) +
                   (i < static_cast<int64_t>(std::size(kDeptNames))
                        ? ""
                        : "-" + std::to_string(i)))));
    departments.push_back(d);
  }

  std::vector<Value> employees;
  for (int64_t i = 0; i < options.num_employees; ++i) {
    Value e = db->NewObject(emp);
    KOLA_CHECK_OK(db->SetAttribute(e, "ename",
                                   Value::Str(rng.Identifier(6))));
    KOLA_CHECK_OK(db->SetAttribute(
        e, "salary",
        Value::Int(rng.Uniform(options.min_salary, options.max_salary))));
    if (!departments.empty()) {
      KOLA_CHECK_OK(db->SetAttribute(
          e, "dept", departments[rng.Index(departments.size())]));
    }
    std::vector<Value> skills;
    for (int64_t s = rng.Uniform(0, options.max_skills); s-- > 0;) {
      skills.push_back(Value::Str(kSkills[rng.Index(std::size(kSkills))]));
    }
    KOLA_CHECK_OK(db->SetAttribute(e, "skills",
                                   Value::MakeSet(std::move(skills))));
    employees.push_back(e);
  }
  for (const Value& d : departments) {
    if (!employees.empty()) {
      KOLA_CHECK_OK(db->SetAttribute(
          d, "head", employees[rng.Index(employees.size())]));
    }
  }

  std::vector<Value> projects;
  for (int64_t i = 0; i < options.num_projects; ++i) {
    Value p = db->NewObject(proj);
    KOLA_CHECK_OK(db->SetAttribute(p, "pname",
                                   Value::Str("proj-" + std::to_string(i))));
    KOLA_CHECK_OK(db->SetAttribute(
        p, "budget", Value::Int(rng.Uniform(10'000, 5'000'000))));
    std::vector<Value> members;
    if (!employees.empty()) {
      for (int64_t m = rng.Uniform(1, options.max_members); m-- > 0;) {
        members.push_back(employees[rng.Index(employees.size())]);
      }
    }
    KOLA_CHECK_OK(db->SetAttribute(p, "members",
                                   Value::MakeSet(std::move(members))));
    projects.push_back(p);
  }

  KOLA_CHECK_OK(db->DefineExtent("D", Value::MakeSet(departments)));
  KOLA_CHECK_OK(db->DefineExtent("E", Value::MakeSet(employees)));
  KOLA_CHECK_OK(db->DefineExtent("Proj", Value::MakeSet(projects)));
  return db;
}

}  // namespace kola
