#include "values/value.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/macros.h"

namespace kola {

struct Value::PairRep {
  Value first;
  Value second;
};

const char* ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kString:
      return "string";
    case ValueKind::kPair:
      return "pair";
    case ValueKind::kSet:
      return "set";
    case ValueKind::kBag:
      return "bag";
    case ValueKind::kObject:
      return "object";
  }
  return "unknown";
}

Value::Value() : kind_(ValueKind::kNull) {}

Value Value::Null() { return Value(); }

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = ValueKind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = ValueKind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = ValueKind::kString;
  v.string_ = std::make_shared<const std::string>(std::move(s));
  return v;
}

Value Value::MakePair(Value first, Value second) {
  Value v;
  v.kind_ = ValueKind::kPair;
  v.pair_ = std::make_shared<const PairRep>(
      PairRep{std::move(first), std::move(second)});
  return v;
}

Value Value::MakeSet(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  elements.erase(std::unique(elements.begin(), elements.end(),
                             [](const Value& a, const Value& b) {
                               return Compare(a, b) == 0;
                             }),
                 elements.end());
  Value v;
  v.kind_ = ValueKind::kSet;
  v.set_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

Value Value::EmptySet() { return MakeSet({}); }

Value Value::MakeBag(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  Value v;
  v.kind_ = ValueKind::kBag;
  v.set_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

Value Value::Object(int32_t class_id, int64_t object_id) {
  Value v;
  v.kind_ = ValueKind::kObject;
  v.class_id_ = class_id;
  v.int_ = object_id;
  return v;
}

bool Value::bool_value() const {
  KOLA_CHECK(is_bool());
  return bool_;
}

int64_t Value::int_value() const {
  KOLA_CHECK(is_int());
  return int_;
}

const std::string& Value::string_value() const {
  KOLA_CHECK(is_string());
  return *string_;
}

const Value& Value::first() const {
  KOLA_CHECK(is_pair());
  return pair_->first;
}

const Value& Value::second() const {
  KOLA_CHECK(is_pair());
  return pair_->second;
}

const std::vector<Value>& Value::elements() const {
  KOLA_CHECK(is_collection());
  return *set_;
}

int32_t Value::object_class() const {
  KOLA_CHECK(is_object());
  return class_id_;
}

int64_t Value::object_id() const {
  KOLA_CHECK(is_object());
  return int_;
}

StatusOr<bool> Value::AsBool() const {
  if (!is_bool()) {
    return TypeError(std::string("expected bool, got ") +
                     ValueKindToString(kind_) + ": " + ToString());
  }
  return bool_;
}

StatusOr<int64_t> Value::AsInt() const {
  if (!is_int()) {
    return TypeError(std::string("expected int, got ") +
                     ValueKindToString(kind_) + ": " + ToString());
  }
  return int_;
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) {
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_) ? -1 : 1;
  }
  switch (a.kind_) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return (a.bool_ == b.bool_) ? 0 : (a.bool_ ? 1 : -1);
    case ValueKind::kInt:
      return (a.int_ == b.int_) ? 0 : (a.int_ < b.int_ ? -1 : 1);
    case ValueKind::kString: {
      int c = a.string_->compare(*b.string_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kPair: {
      int c = Compare(a.pair_->first, b.pair_->first);
      if (c != 0) return c;
      return Compare(a.pair_->second, b.pair_->second);
    }
    case ValueKind::kSet:
    case ValueKind::kBag: {
      const auto& ae = *a.set_;
      const auto& be = *b.set_;
      size_t n = std::min(ae.size(), be.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(ae[i], be[i]);
        if (c != 0) return c;
      }
      if (ae.size() == be.size()) return 0;
      return ae.size() < be.size() ? -1 : 1;
    }
    case ValueKind::kObject: {
      if (a.class_id_ != b.class_id_) {
        return a.class_id_ < b.class_id_ ? -1 : 1;
      }
      return (a.int_ == b.int_) ? 0 : (a.int_ < b.int_ ? -1 : 1);
    }
  }
  return 0;
}

bool Value::SetContains(const Value& element) const {
  KOLA_CHECK(is_collection());
  return std::binary_search(
      set_->begin(), set_->end(), element,
      [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
}

size_t Value::SetSize() const {
  KOLA_CHECK(is_collection());
  return set_->size();
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ValueKind::kNull:
      os << "null";
      break;
    case ValueKind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case ValueKind::kInt:
      os << int_;
      break;
    case ValueKind::kString:
      os << '"' << *string_ << '"';
      break;
    case ValueKind::kPair:
      os << '[' << pair_->first.ToString() << ", " << pair_->second.ToString()
         << ']';
      break;
    case ValueKind::kSet:
    case ValueKind::kBag: {
      os << (kind_ == ValueKind::kSet ? "{" : "{|");
      for (size_t i = 0; i < set_->size(); ++i) {
        if (i > 0) os << ", ";
        os << (*set_)[i].ToString();
      }
      os << (kind_ == ValueKind::kSet ? "}" : "|}");
      break;
    }
    case ValueKind::kObject:
      os << "obj<" << class_id_ << ">#" << int_;
      break;
  }
  return os.str();
}

size_t Value::Hash() const {
  auto combine = [](size_t seed, size_t h) {
    return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  };
  size_t h = static_cast<size_t>(kind_) * 0x100000001b3ULL;
  switch (kind_) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      h = combine(h, bool_ ? 1 : 0);
      break;
    case ValueKind::kInt:
      h = combine(h, std::hash<int64_t>{}(int_));
      break;
    case ValueKind::kString:
      h = combine(h, std::hash<std::string>{}(*string_));
      break;
    case ValueKind::kPair:
      h = combine(h, pair_->first.Hash());
      h = combine(h, pair_->second.Hash());
      break;
    case ValueKind::kSet:
    case ValueKind::kBag:
      for (const Value& e : *set_) h = combine(h, e.Hash());
      break;
    case ValueKind::kObject:
      h = combine(h, static_cast<size_t>(class_id_));
      h = combine(h, std::hash<int64_t>{}(int_));
      break;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace kola
