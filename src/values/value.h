#ifndef KOLA_VALUES_VALUE_H_
#define KOLA_VALUES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace kola {

class Value;

/// Discriminator for runtime values flowing through the KOLA and AQUA
/// evaluators.
enum class ValueKind {
  kNull = 0,  // used only as an internal placeholder / error sentinel
  kBool,
  kInt,
  kString,
  kPair,    // the paper's [x, y] objects
  kSet,     // canonical: sorted, duplicate-free
  kBag,     // multiset: sorted, duplicates kept (Section 6 extension)
  kObject,  // reference to a schema object: (class id, object id)
};

const char* ValueKindToString(ValueKind kind);

/// An immutable runtime value. Values have value semantics; pair and set
/// payloads are shared (copy is O(1)). Sets are kept canonical (sorted by
/// Value::Compare and duplicate-free) so equality is structural.
class Value {
 public:
  /// Constructs the null value (kind kNull).
  Value();

  static Value Null();
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Str(std::string s);
  static Value MakePair(Value first, Value second);
  /// Canonicalizes: sorts and removes duplicates.
  static Value MakeSet(std::vector<Value> elements);
  static Value EmptySet();
  /// Canonicalizes: sorts, KEEPS duplicates (a multiset).
  static Value MakeBag(std::vector<Value> elements);
  static Value Object(int32_t class_id, int64_t object_id);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_bool() const { return kind_ == ValueKind::kBool; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_string() const { return kind_ == ValueKind::kString; }
  bool is_pair() const { return kind_ == ValueKind::kPair; }
  bool is_set() const { return kind_ == ValueKind::kSet; }
  bool is_bag() const { return kind_ == ValueKind::kBag; }
  /// Set or bag.
  bool is_collection() const { return is_set() || is_bag(); }
  bool is_object() const { return kind_ == ValueKind::kObject; }

  // Accessors abort on kind mismatch (library bug); use the As* variants for
  // user-facing paths that must produce a TypeError instead.
  bool bool_value() const;
  int64_t int_value() const;
  const std::string& string_value() const;
  const Value& first() const;
  const Value& second() const;
  const std::vector<Value>& elements() const;
  int32_t object_class() const;
  int64_t object_id() const;

  StatusOr<bool> AsBool() const;
  StatusOr<int64_t> AsInt() const;

  /// Total order over all values: by kind rank, then content. Gives sets a
  /// canonical element order and makes Value usable as a map key.
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  /// True when `element` is a member of this set or bag. Requires
  /// is_collection().
  bool SetContains(const Value& element) const;

  /// Number of elements (with multiplicity for bags); requires
  /// is_collection().
  size_t SetSize() const;

  /// Renders a readable literal, e.g. `[1, {"a", "b"}]`, `Person#3`.
  std::string ToString() const;

  /// Stable hash consistent with operator==.
  size_t Hash() const;

 private:
  struct PairRep;  // {first, second}; defined in value.cc

  ValueKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  int32_t class_id_ = -1;
  std::shared_ptr<const std::string> string_;
  std::shared_ptr<const PairRep> pair_;
  std::shared_ptr<const std::vector<Value>> set_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace kola

#endif  // KOLA_VALUES_VALUE_H_
