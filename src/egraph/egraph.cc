#include "egraph/egraph.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "rewrite/rule_index.h"
#include "rules/catalog.h"

namespace kola {

namespace {

/// Estimated heap bytes one e-node costs (node struct, child ids, hashcons
/// slot, memo entry): the unit of MemoryCategory::kEGraph charges.
int64_t ENodeFootprintBytes(size_t arity) {
  return static_cast<int64_t>(96 + 8 * arity);
}

/// The extraction order: fewer nodes first, then the smaller rendering
/// (shorter, then lexicographic). A strict weak order over structurally
/// distinct terms with no platform-dependent input, so ties break the same
/// way everywhere.
bool SmallerTerm(const TermPtr& a, const TermPtr& b) {
  if (a->node_count() != b->node_count()) {
    return a->node_count() < b->node_count();
  }
  const std::string sa = a->ToString();
  const std::string sb = b->ToString();
  if (sa.size() != sb.size()) return sa.size() < sb.size();
  return sa < sb;
}

}  // namespace

EGraph::EGraph(EGraphOptions options)
    : options_(options),
      charge_(options.governor, MemoryCategory::kEGraph) {}

EClassId EGraph::Find(EClassId id) const {
  // Path halving; parent_ is logically const (find never changes the
  // partition, only shortens it).
  auto& parent = const_cast<std::vector<EClassId>&>(parent_);
  while (parent[id] != id) {
    parent[id] = parent[parent[id]];
    id = parent[id];
  }
  return id;
}

EClassId EGraph::Merge(EClassId a, EClassId b) {
  EClassId ra = Find(a);
  EClassId rb = Find(b);
  if (ra == rb) return ra;
  // Smaller root id wins: the partition is a pure function of the merge
  // sequence, independent of argument order.
  if (rb < ra) std::swap(ra, rb);
  parent_[rb] = ra;
  ++stats_.unions;
  dirty_ = true;
  return ra;
}

uint64_t EGraph::NodeHash(const Term& rep,
                          const std::vector<EClassId>& children) const {
  uint64_t h = StableHashCombine(0x9e3779b97f4a7c15ULL,
                                 static_cast<uint64_t>(rep.kind()));
  if (rep.is_leaf()) return StableHashCombine(h, rep.stable_hash());
  for (EClassId child : children) {
    h = StableHashCombine(h, Find(child));
  }
  return h;
}

bool EGraph::CongruentWithKey(const ENode& node, const Term& rep,
                              const std::vector<EClassId>& children) const {
  if (node.rep->kind() != rep.kind()) return false;
  if (rep.is_leaf()) {
    // Leaves carry the payload (name / literal / bool), so identity is
    // structural equality of the reps -- a pointer compare when both came
    // canonical out of the arena.
    if (!node.rep->is_leaf()) return false;
    if (node.rep.get() == &rep) return true;
    if (node.rep->hash() != rep.hash()) return false;
    if (node.rep->name() != rep.name()) return false;
    if (node.rep->bool_const() != rep.bool_const()) return false;
    return node.rep->ToString() == rep.ToString();
  }
  if (node.rep->is_leaf()) return false;
  if (node.children.size() != children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (Find(node.children[i]) != Find(children[i])) return false;
  }
  return true;
}

EClassId EGraph::NodeFor(const TermPtr& rep, std::vector<EClassId> children) {
  for (EClassId& child : children) child = Find(child);
  const uint64_t hash = NodeHash(*rep, children);
  std::vector<uint32_t>& bucket = hashcons_[hash];
  for (uint32_t index : bucket) {
    if (CongruentWithKey(nodes_[index], *rep, children)) {
      return Find(nodes_[index].cls);
    }
  }
  // A failed bookkeeping charge latches exhaustion (stopping the next
  // saturation step) but the node is still created: AddTerm must complete
  // so seed plans always have a class to be extracted from.
  if (!charge_.Add(ENodeFootprintBytes(children.size())).ok()) {
    exhausted_ = true;
  }
  const EClassId cls = static_cast<EClassId>(parent_.size());
  parent_.push_back(cls);
  ENode node;
  node.rep = rep;
  node.children = std::move(children);
  node.cls = cls;
  nodes_.push_back(std::move(node));
  bucket.push_back(static_cast<uint32_t>(nodes_.size() - 1));
  ++stats_.nodes;
  return cls;
}

EClassId EGraph::AddTerm(const TermPtr& term) {
  KOLA_CHECK(term != nullptr);
  if (dirty_) Rebuild();
  TermPtr canon = arena_.Intern(term);

  // Iterative post-order so a deep plan spine cannot overflow the native
  // stack. A frame's child_classes doubles as the next-child cursor: a
  // child resolved from the memo delivers immediately, one resolved by a
  // pushed frame delivers when that frame completes.
  struct Frame {
    TermPtr term;
    std::vector<EClassId> child_classes;
  };
  std::vector<Frame> stack;
  EClassId result = 0;
  auto deliver = [&](EClassId cls) {
    if (stack.empty()) {
      result = cls;
    } else {
      stack.back().child_classes.push_back(cls);
    }
  };
  auto enter = [&](const TermPtr& node) {
    auto it = memo_.find(node);
    if (it != memo_.end()) {
      deliver(Find(it->second));
    } else {
      stack.push_back(Frame{node, {}});
    }
  };
  enter(canon);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.child_classes.size() < frame.term->arity()) {
      enter(frame.term->child(frame.child_classes.size()));
      continue;
    }
    TermPtr node = frame.term;
    EClassId cls = NodeFor(node, std::move(frame.child_classes));
    stack.pop_back();
    memo_.emplace(std::move(node), cls);
    deliver(cls);
  }
  return result;
}

void EGraph::Rebuild() {
  // Re-canonicalize and re-hash every node, merging congruent ones; a
  // merge can change earlier nodes' canonical children, so restart until a
  // full pass finds nothing to do. Buckets are rebuilt in node order each
  // pass, keeping probe order (and therefore which node becomes a class's
  // bucket representative) deterministic.
  bool changed = true;
  while (changed) {
    changed = false;
    hashcons_.clear();
    for (size_t i = 0; i < nodes_.size(); ++i) {
      ENode& node = nodes_[i];
      for (EClassId& child : node.children) child = Find(child);
      node.cls = Find(node.cls);
      const uint64_t hash = NodeHash(*node.rep, node.children);
      std::vector<uint32_t>& bucket = hashcons_[hash];
      bool duplicate = false;
      for (uint32_t index : bucket) {
        if (index == i) continue;
        if (CongruentWithKey(nodes_[index], *node.rep, node.children)) {
          if (Find(nodes_[index].cls) != Find(node.cls)) {
            Merge(nodes_[index].cls, node.cls);
            changed = true;
          }
          duplicate = true;
          break;
        }
      }
      if (!duplicate) bucket.push_back(static_cast<uint32_t>(i));
    }
  }
  dirty_ = false;
}

Status EGraph::Saturate(const Rewriter& rewriter,
                        const std::vector<Rule>& rules, uint64_t fingerprint) {
  if (dirty_) Rebuild();
  // nullptr when indexing is off (options / KOLA_NO_RULE_INDEX) or the
  // budget refused the compiled tree; the linear probe below fires the
  // same rules in the same ascending order, so the e-graph evolves
  // identically either way (the index is an exact filter).
  std::shared_ptr<const RuleIndex> index = rewriter.IndexFor(rules,
                                                             fingerprint);
  std::vector<uint32_t> candidates;
  size_t next = 0;
  bool capped = false;
  while (next < nodes_.size()) {
    if (options_.max_nodes != 0 && nodes_.size() >= options_.max_nodes) {
      capped = true;
      break;
    }
    if (options_.governor != nullptr) {
      // Covers deadline, cancellation, and the sticky memory latch a
      // refused e-node / arena charge left behind.
      KOLA_RETURN_IF_ERROR(options_.governor->CheckNow());
    }
    if (exhausted_) {
      return ResourceExhaustedError("e-graph memory budget exhausted after " +
                                    std::to_string(nodes_.size()) +
                                    " e-nodes");
    }
    // The node vector grows inside the loop; keep the rep alive by value.
    const TermPtr rep = nodes_[next].rep;
    const EClassId cls = nodes_[next].cls;
    if (index != nullptr) {
      index->CandidatesAt(*rep, &candidates);
    } else {
      candidates.resize(rules.size());
      for (uint32_t i = 0; i < rules.size(); ++i) candidates[i] = i;
    }
    for (uint32_t rule_index : candidates) {
      std::optional<TermPtr> rewritten =
          rewriter.ApplyAtRoot(rules[rule_index], rep);
      if (!rewritten.has_value()) continue;
      if (options_.governor != nullptr) {
        KOLA_RETURN_IF_ERROR(options_.governor->Charge(1));
      }
      ++stats_.rule_applications;
      const EClassId out = AddTerm(*rewritten);
      Merge(cls, out);
      if (dirty_) Rebuild();
    }
    ++next;
    ++stats_.processed;
  }
  stats_.saturated = !capped && next == nodes_.size();
  return Status::OK();
}

std::vector<TermPtr> EGraph::BestByClass() {
  if (dirty_) Rebuild();
  std::vector<TermPtr> best(parent_.size());
  // Bottom-up e-class cost minimization on the size metric: each pass
  // offers, per node, its rep and (once every child class has a best) the
  // rep rebuilt over the children's bests. A table entry only ever gets
  // strictly smaller, so the total size decreases every changing pass and
  // the loop terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ENode& node : nodes_) {
      TermPtr candidate = node.rep;
      if (!node.rep->is_leaf()) {
        std::vector<TermPtr> kids;
        kids.reserve(node.children.size());
        bool complete = true;
        for (EClassId child : node.children) {
          const TermPtr& kid = best[Find(child)];
          if (kid == nullptr) {
            complete = false;
            break;
          }
          kids.push_back(kid);
        }
        if (complete) {
          // TryWithChildren: replacement children come from other class
          // members, so an ill-sorted rebuild is possible in principle;
          // skip it and keep the rep.
          StatusOr<TermPtr> rebuilt =
              node.rep->TryWithChildren(std::move(kids));
          if (rebuilt.ok() && SmallerTerm(*rebuilt, candidate)) {
            candidate = *rebuilt;
          }
        }
      }
      TermPtr& slot = best[Find(node.cls)];
      if (slot == nullptr || SmallerTerm(candidate, slot)) {
        slot = candidate;
        changed = true;
      }
    }
  }
  return best;
}

StatusOr<TermPtr> EGraph::ExtractSmallest(EClassId id) {
  if (id >= parent_.size()) {
    return InvalidArgumentError("unknown e-class id " + std::to_string(id));
  }
  std::vector<TermPtr> best = BestByClass();
  TermPtr term = best[Find(id)];
  if (term == nullptr) {
    return InternalError("e-class " + std::to_string(id) +
                         " has no extractable member");
  }
  return term;
}

std::vector<TermPtr> EGraph::ExtractCandidates(EClassId id) {
  std::vector<TermPtr> out;
  if (id >= parent_.size()) return out;
  std::vector<TermPtr> best = BestByClass();
  const EClassId root = Find(id);
  std::unordered_set<std::string> seen;
  auto offer = [&](const TermPtr& term) {
    if (term == nullptr) return;
    if (seen.insert(term->ToString()).second) out.push_back(term);
  };
  for (const ENode& node : nodes_) {
    if (Find(node.cls) != root) continue;
    offer(node.rep);
    if (!node.rep->is_leaf()) {
      std::vector<TermPtr> kids;
      kids.reserve(node.children.size());
      bool complete = true;
      for (EClassId child : node.children) {
        const TermPtr& kid = best[Find(child)];
        if (kid == nullptr) {
          complete = false;
          break;
        }
        kids.push_back(kid);
      }
      if (complete) {
        StatusOr<TermPtr> rebuilt = node.rep->TryWithChildren(std::move(kids));
        if (rebuilt.ok()) offer(*rebuilt);
      }
    }
  }
  return out;
}

size_t EGraph::class_count() const {
  std::vector<bool> root_seen(parent_.size(), false);
  size_t count = 0;
  for (const ENode& node : nodes_) {
    const EClassId root = Find(node.cls);
    if (!root_seen[root]) {
      root_seen[root] = true;
      ++count;
    }
  }
  return count;
}

EGraphStats EGraph::stats() const {
  EGraphStats snapshot = stats_;
  snapshot.classes = class_count();
  return snapshot;
}

const std::vector<Rule>& SaturationRuleSet() {
  // Leaked, like the rule catalogs: rules hold terms that may outlive
  // static teardown order.
  static const std::vector<Rule>* pool = [] {
    auto* rules = new std::vector<Rule>();
    std::unordered_set<std::string> seen;
    auto add = [&](const Rule& rule) {
      std::string key = rule.lhs->ToString() + " => " + rule.rhs->ToString();
      for (const PropertyAtom& condition : rule.conditions) {
        key += " if " + condition.property + "(" +
               condition.pattern->ToString() + ")";
      }
      if (seen.insert(std::move(key)).second) rules->push_back(rule);
    };
    for (const Rule& rule : AllCatalogRules()) {
      add(rule);
      StatusOr<Rule> reversed = ReverseRule(rule);
      // Reversals that invent variables are rejected by ReverseRule;
      // reversals whose lhs is a bare metavariable (f => f o id readings)
      // fire at every node of matching sort and only inflate the graph,
      // so they are dropped too.
      if (reversed.ok() && !reversed->lhs->is_metavar()) add(*reversed);
    }
    return rules;
  }();
  return *pool;
}

uint64_t SaturationRuleFingerprint() {
  static const uint64_t fingerprint = RuleSetFingerprint(SaturationRuleSet());
  return fingerprint;
}

EGraphOutcome SaturateAndExtract(const TermPtr& query, const TermPtr& greedy,
                                 const Rewriter& rewriter,
                                 const PlanCostFn& cost,
                                 const EGraphOptions& options) {
  EGraphOutcome outcome;
  outcome.plan = greedy != nullptr ? greedy : query;
  EGraph egraph(options);
  const EClassId root = egraph.AddTerm(query);
  if (greedy != nullptr && !Term::Equal(query, greedy)) {
    // Sound merge: the greedy plan was derived from the query by equation
    // rules, so both denote the same function.
    egraph.Merge(root, egraph.AddTerm(greedy));
    egraph.Rebuild();
  }
  outcome.status = egraph.Saturate(rewriter, SaturationRuleSet(),
                                   SaturationRuleFingerprint());
  // Extraction runs even when saturation was cut short: degradation
  // returns the best plan of the partial graph, which always contains the
  // seeds.
  const TermPtr baseline = outcome.plan;
  StatusOr<double> baseline_cost = cost(baseline);
  if (baseline_cost.ok()) {
    double best_cost = *baseline_cost;
    TermPtr best = baseline;
    for (const TermPtr& candidate : egraph.ExtractCandidates(root)) {
      if (Term::Equal(candidate, best)) continue;
      StatusOr<double> candidate_cost = cost(candidate);
      if (!candidate_cost.ok()) continue;
      if (*candidate_cost < best_cost ||
          (*candidate_cost == best_cost && SmallerTerm(candidate, best))) {
        best_cost = *candidate_cost;
        best = candidate;
      }
    }
    outcome.plan = best;
  }
  outcome.stats = egraph.stats();
  return outcome;
}

}  // namespace kola
