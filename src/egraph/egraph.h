#ifndef KOLA_EGRAPH_EGRAPH_H_
#define KOLA_EGRAPH_EGRAPH_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "common/statusor.h"
#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "term/intern.h"
#include "term/term.h"

namespace kola {

/// Identifier of an equivalence class of terms inside one EGraph.
using EClassId = uint32_t;

/// Counters exposed through OptimizeResult and kolad's STATS endpoint.
struct EGraphStats {
  uint64_t nodes = 0;              // e-nodes created (duplicates excluded)
  uint64_t classes = 0;            // distinct equivalence classes (post-union)
  uint64_t unions = 0;             // Merge calls that actually joined classes
  uint64_t rule_applications = 0;  // rule firings during saturation
  uint64_t processed = 0;          // e-nodes the saturation worklist consumed
  bool saturated = false;          // worklist drained with no cap / stop
};

struct EGraphOptions {
  /// Stop growing once this many e-nodes exist; the worklist halts and
  /// extraction runs over what was built (stats().saturated stays false).
  /// 0 means unbounded.
  size_t max_nodes = 1024;

  /// Budget for saturation: one step per rule firing, e-node bookkeeping
  /// bytes under MemoryCategory::kEGraph, deadline probed per worklist
  /// entry. nullptr means ungoverned. Not owned; must outlive the EGraph.
  const Governor* governor = nullptr;
};

/// E-classes plus congruence closure over interned terms: the equality-
/// saturation backend of ROADMAP item 3.
///
/// Every added term is canonicalized through a private hash-consing arena,
/// then decomposed bottom-up into e-nodes. An e-node keeps the interned
/// subterm that created it (`rep`) and the e-classes of its children; two
/// e-nodes are identical when their reps are structurally equal leaves, or
/// when they share a kind and (canonical) child classes -- every payload-
/// carrying TermKind is a leaf, so non-leaf identity needs no payload
/// compare. Identity is resolved through a hashcons keyed by a
/// platform-stable hash, with a union-find over class ids on top; Rebuild()
/// restores congruence closure after merges (congruent nodes land in one
/// class, to a fixpoint).
///
/// Determinism: class ids are assigned in insertion order, unions keep the
/// smaller root id, hashcons buckets are scanned in insertion order, and
/// every hash is built from the platform-stable Term::stable_hash /
/// StableHashCombine -- so the same AddTerm/Merge/Saturate sequence builds
/// the same e-graph on every platform, and extraction (cost, then smallest
/// rendering) is a pure function of it.
///
/// Single-threaded, like a Rewriter: one EGraph per optimization pass.
class EGraph {
 public:
  explicit EGraph(EGraphOptions options = EGraphOptions());

  EGraph(const EGraph&) = delete;
  EGraph& operator=(const EGraph&) = delete;

  /// Interns `term`, decomposes it into e-nodes (sharing existing ones) and
  /// returns its class. Always completes, even once the governor's memory
  /// budget is exhausted -- seed terms must land so degraded extraction has
  /// something to return -- but a failed bookkeeping charge latches
  /// exhausted() and the governor, which stops the next Saturate step.
  EClassId AddTerm(const TermPtr& term);

  /// Declares the two classes equal (the caller asserts semantic equality,
  /// e.g. both sides derive from one query by equation rules). Returns the
  /// surviving root; congruence is restored by the next Rebuild().
  EClassId Merge(EClassId a, EClassId b);

  /// Canonical representative of `id`'s class.
  EClassId Find(EClassId id) const;

  /// Restores the invariants Merge suspends: canonicalizes every node's
  /// children, re-hashes, and unions congruent nodes, to a fixpoint.
  void Rebuild();

  /// Equality saturation: one pass of a worklist over every e-node (nodes
  /// added by firings join the tail). Each rule of `rules` is tried at each
  /// node's rep via Rewriter::ApplyAtRoot -- the same match + condition +
  /// substitute primitive as the greedy engine -- with the compiled
  /// RuleIndex (when available) filtering candidates exactly, so results
  /// are identical with indexing on or off. A firing adds the rewritten
  /// term and merges it with the node's class.
  ///
  /// A (rule, node) pair never needs a second visit: reps are immutable and
  /// conditions resolve against a fixed PropertyStore, so one drained
  /// worklist IS saturation. Stops early (returning RESOURCE_EXHAUSTED)
  /// when the governor trips; stops silently at max_nodes. `fingerprint`
  /// must be RuleSetFingerprint(rules).
  Status Saturate(const Rewriter& rewriter, const std::vector<Rule>& rules,
                  uint64_t fingerprint);

  /// The smallest term of `id`'s class, by bottom-up e-class minimization:
  /// per class, the least (node_count, then rendering) of each member
  /// node's rep and of the node rebuilt over its children's best terms,
  /// iterated to a fixpoint. Every class holds the concrete subterm that
  /// created it, so extraction cannot fail on a valid id.
  StatusOr<TermPtr> ExtractSmallest(EClassId id);

  /// Candidate plans of `id`'s class for cost ranking: every member node's
  /// rep and its best-children rebuild, deduplicated by rendering, in
  /// deterministic (insertion, then rep-before-rebuild) order.
  std::vector<TermPtr> ExtractCandidates(EClassId id);

  size_t node_count() const { return nodes_.size(); }
  size_t class_count() const;

  /// True once an e-node bookkeeping charge was refused (sticky).
  bool exhausted() const { return exhausted_; }

  /// Snapshot with classes recomputed.
  EGraphStats stats() const;

 private:
  struct ENode {
    TermPtr rep;                    // interned subterm that created the node
    std::vector<EClassId> children; // canonical as of the last Rebuild
    EClassId cls = 0;
  };

  struct PtrHash {
    size_t operator()(const TermPtr& t) const {
      return std::hash<const Term*>{}(t.get());
    }
  };
  struct PtrEq {
    bool operator()(const TermPtr& a, const TermPtr& b) const {
      return a.get() == b.get();
    }
  };

  uint64_t NodeHash(const Term& rep,
                    const std::vector<EClassId>& children) const;
  bool CongruentWithKey(const ENode& node, const Term& rep,
                        const std::vector<EClassId>& children) const;
  /// Finds or creates the e-node for (rep, child classes); returns its
  /// class. The only place nodes and classes are born.
  EClassId NodeFor(const TermPtr& rep, std::vector<EClassId> children);
  /// Recomputes the per-class best-term table (see ExtractSmallest).
  std::vector<TermPtr> BestByClass();

  EGraphOptions options_;
  /// Private arena: canonical pointers make the memo a pointer map and
  /// leaf identity a pointer compare in the common case. The hashcons
  /// stays the authority -- under fault injection or a refused arena
  /// charge Intern legitimately hands terms back un-canonicalized, and
  /// structural leaf equality still unifies them.
  TermInterner arena_;
  /// Canonical subterm -> class at insertion (callers Find through it).
  /// Keyed by owning pointer: TermIds are unusable here because "first tag
  /// wins" lets canonical terms of this arena carry another arena's id.
  std::unordered_map<TermPtr, EClassId, PtrHash, PtrEq> memo_;
  std::vector<ENode> nodes_;
  std::vector<EClassId> parent_;  // union-find over class ids
  /// Stable node hash -> node indices in insertion order. Valid while
  /// !dirty_.
  std::unordered_map<uint64_t, std::vector<uint32_t>> hashcons_;
  bool dirty_ = false;
  bool exhausted_ = false;
  MemoryCharge charge_;
  EGraphStats stats_;
};

/// Ranks extracted plans; adapts CostModel::EstimateQueryCost without an
/// optimizer-layer dependency. A non-OK status skips the candidate.
using PlanCostFn = std::function<StatusOr<double>(const TermPtr&)>;

/// The saturation rule pool: AllCatalogRules plus every reversed reading
/// that is itself well-formed (rules are equations), minus reversals whose
/// lhs is a bare metavariable (they fire at every node and only inflate
/// the graph), deduplicated by syntax. Built once per process.
const std::vector<Rule>& SaturationRuleSet();

/// RuleSetFingerprint(SaturationRuleSet()), cached.
uint64_t SaturationRuleFingerprint();

struct EGraphOutcome {
  /// OK, or RESOURCE_EXHAUSTED when saturation was cut short -- `plan` is
  /// then the best extracted from the partial graph (never null).
  Status status;
  TermPtr plan;
  EGraphStats stats;
};

/// The whole backend in one call: seeds an e-graph with `query` and the
/// greedy pipeline's `greedy` plan (merged into one class -- both derive
/// from the query by equation rules), saturates SaturationRuleSet() under
/// `options`, and extracts the cheapest plan by `cost` with deterministic
/// tie-breaks (cost, then smallest rendering). `greedy` is always a
/// ranked candidate, so the result never costs more than the greedy plan;
/// if `cost(greedy)` itself fails, `greedy` is returned unchanged.
EGraphOutcome SaturateAndExtract(const TermPtr& query, const TermPtr& greedy,
                                 const Rewriter& rewriter,
                                 const PlanCostFn& cost,
                                 const EGraphOptions& options);

}  // namespace kola

#endif  // KOLA_EGRAPH_EGRAPH_H_
