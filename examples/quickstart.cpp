// Quickstart: parse a variable-based (AQUA) query, translate it to the
// KOLA combinator algebra, optimize it with declarative rules, and run it
// against a synthetic object database.
//
//   ./examples/quickstart ["aqua query text"]

#include <cstdio>

#include "aqua/eval.h"
#include "aqua/parser.h"
#include "common/fault_injection.h"
#include "eval/evaluator.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "values/car_world.h"

int main(int argc, char** argv) {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }


  // 1. A small object database: Persons with ages, addresses, children,
  //    cars and garages; Vehicles; Addresses (the paper's example schema).
  CarWorldOptions options;
  options.num_persons = 12;
  options.num_vehicles = 8;
  options.num_addresses = 6;
  options.seed = 2026;
  std::unique_ptr<Database> db = BuildCarWorld(options);

  // 2. A user-level query in the variable-based algebra. Default: the
  //    cities of people older than 25.
  const char* text = argc > 1
                         ? argv[1]
                         : "app(\\x. x.addr.city)(sel(\\p. p.age > 25)(P))";
  auto aqua_query = aqua::ParseAqua(text);
  if (!aqua_query.ok()) {
    std::printf("parse error: %s\n", aqua_query.status().ToString().c_str());
    return 1;
  }
  std::printf("AQUA query:   %s\n", aqua_query.value()->ToString().c_str());

  // 3. Translate into the variable-free internal algebra.
  Translator translator;
  auto kola_query = translator.TranslateQuery(aqua_query.value());
  if (!kola_query.ok()) {
    std::printf("translation error: %s\n",
                kola_query.status().ToString().c_str());
    return 1;
  }
  std::printf("KOLA form:    %s\n", kola_query.value()->ToString().c_str());

  // 4. Optimize with declarative rules (no head/body routines anywhere).
  PropertyStore properties = PropertyStore::Default();
  Optimizer optimizer(&properties, db.get());
  auto optimized = optimizer.Optimize(kola_query.value());
  if (!optimized.ok()) {
    std::printf("optimizer error: %s\n",
                optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized:    %s\n", optimized->query->ToString().c_str());
  std::printf("est. cost:    %.0f -> %.0f (%s)\n", optimized->cost_before,
              optimized->cost_after,
              optimized->kept_rewrite ? "kept rewrite" : "kept original");
  for (const auto& block : optimized->applied_blocks) {
    std::printf("  block fired: %s\n", block.c_str());
  }

  // 5. Evaluate both routes and cross-check.
  aqua::AquaEvaluator aqua_eval(db.get());
  auto reference = aqua_eval.EvalQuery(aqua_query.value());
  auto result = EvalQuery(*db, optimized->query);
  if (!reference.ok() || !result.ok()) {
    std::printf("evaluation error\n");
    return 1;
  }
  std::printf("result:       %s\n", result.value().ToString().c_str());
  std::printf("cross-check:  %s\n",
              reference.value() == result.value() ? "AQUA == KOLA (ok)"
                                                  : "MISMATCH");
  return reference.value() == result.value() ? 0 : 1;
}
