// The paper's headline example, end to end: the "Garage Query" (which
// vehicles might be parked where) starts life as a deeply nested AQUA
// query, translates to the hidden-join KOLA form KG1 (Figure 3), and the
// five-step rule strategy of Section 4.1 untangles it into the explicit
// nest-of-join KG2 -- every step a declarative rule, printed as a
// derivation. Finally both forms are executed and timed.

#include <chrono>
#include <cstdio>

#include "aqua/transform.h"
#include "common/fault_injection.h"
#include "eval/evaluator.h"
#include "optimizer/hidden_join.h"
#include "translate/translate.h"
#include "values/car_world.h"

int main() {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  std::printf("=== 1. The query, as a user would write it (AQUA) ===\n%s\n",
              aqua::AquaGarageQuery()->ToString().c_str());

  Translator translator;
  auto kg1 = translator.TranslateQuery(aqua::AquaGarageQuery());
  if (!kg1.ok()) {
    std::printf("translation failed: %s\n", kg1.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== 2. Translated to KOLA (this is Figure 3's KG1) ===\n");
  std::printf("%s\n", kg1.value()->ToString().c_str());
  std::printf("matches the paper's KG1: %s\n",
              Term::Equal(kg1.value(), GarageQueryKG1()) ? "yes" : "NO");

  std::printf("\n=== 3. Five-step untangling (Section 4.1) ===\n");
  Rewriter rewriter;
  auto untangled = UntangleHiddenJoin(kg1.value(), rewriter);
  if (!untangled.ok()) {
    std::printf("untangling failed: %s\n",
                untangled.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", untangled->trace.ToString().c_str());
  std::printf("\nblocks fired:");
  for (const auto& name : untangled->blocks_fired) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nfinal form (Figure 3's KG2): %s\n",
              untangled->query->ToString().c_str());
  std::printf("matches the paper's KG2: %s\n",
              Term::Equal(untangled->query, GarageQueryKG2()) ? "yes"
                                                              : "NO");

  std::printf("\n=== 4. Execution: nested loops vs nest-of-join ===\n");
  std::printf("%8s %14s %14s %10s\n", "scale", "KG1 steps", "KG2 steps",
              "speedup");
  for (int64_t scale : {25, 100, 400}) {
    CarWorldOptions options;
    options.num_persons = scale;
    options.num_vehicles = scale;
    options.num_addresses = scale / 2 + 1;
    options.seed = 5;
    auto db = BuildCarWorld(options);

    Evaluator before(db.get());
    auto r1 = before.EvalObject(kg1.value());
    Evaluator after(db.get());
    auto r2 = after.EvalObject(untangled->query);
    if (!r1.ok() || !r2.ok()) {
      std::printf("evaluation failed\n");
      return 1;
    }
    if (!(r1.value() == r2.value())) {
      std::printf("MISMATCH at scale %lld!\n",
                  static_cast<long long>(scale));
      return 1;
    }
    std::printf("%8lld %14lld %14lld %9.1fx\n",
                static_cast<long long>(scale),
                static_cast<long long>(before.steps()),
                static_cast<long long>(after.steps()),
                static_cast<double>(before.steps()) /
                    static_cast<double>(after.steps()));
  }
  std::printf("\n(results identical at every scale; the untangled form "
              "uses the hash join/nest implementations)\n");
  return 0;
}
