// kolad -- the KOLA optimization daemon.
//
// A long-lived service wrapping OptimizationService + SocketServer: accepts
// KOLA/OQL/AQUA query text over a line-oriented TCP protocol on 127.0.0.1,
// optimizes each request under its QoS tier's resource envelope, and
// answers repeated query shapes from the plan cache.
//
//   kolad --port 7070 --jobs 4 --snapshot-path /var/tmp/kola.snap &
//   printf 'Q gold oql select p.name from p in P\n' | nc 127.0.0.1 7070
//
// Protocol (one request per line; final response line starts OK or ERR):
//   Q <tier> <lang> <query>   optimize (cache lookup + fill)
//   F <tier> <lang> <query>   optimize, bypassing the cache entirely
//   STATS                     service counters, one "S ..." line each
//   BUMP                      invalidate the plan cache (catalog change)
//   PING                      liveness probe
//   QUIT                      close this connection
//   SHUTDOWN                  stop the daemon
//
// Crash-free by construction: malformed input, oversized lines, exhausted
// budgets and dropped peers all degrade to per-request or per-connection
// errors. Crash-RECOVERABLE with --snapshot-path: the plan cache is
// periodically checkpointed (atomic tmp+rename, per-entry checksums) and
// restored on the next start, so a SIGKILL costs warm state only since the
// last snapshot interval. SIGINT/SIGTERM and SHUTDOWN run the graceful
// path: drain in-flight connections, take a final snapshot, exit.

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/parse_number.h"
#include "rewrite/properties.h"
#include "service/server.h"
#include "service/service.h"
#include "values/car_world.h"

using namespace kola;

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  // Async-signal-safe nudge; the watcher thread does the real work.
  char byte = 1;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--jobs N] [--handlers N] [--cache-capacity N]\n"
      "          [--max-inflight N] [--world-scale N] [--seed N] "
      "[--no-cache]\n"
      "          [--snapshot-path FILE] [--snapshot-interval-ms N]\n"
      "          [--drain-ms N] [--read-deadline-ms N] "
      "[--write-deadline-ms N]\n"
      "  --port N            TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --jobs N            concurrent optimizations (default 2)\n"
      "  --handlers N        concurrently served connections (default 8)\n"
      "  --cache-capacity N  plan-cache entries, 0 = unbounded "
      "(default 4096)\n"
      "  --max-inflight N    shed requests past this many in flight, "
      "0 = off\n"
      "  --world-scale N     catalog size multiplier (default 1)\n"
      "  --seed N            world seed (default 42)\n"
      "  --no-cache          disable the plan cache\n"
      "  --snapshot-path FILE      persist the plan cache here; restored on\n"
      "                            startup (default off)\n"
      "  --snapshot-interval-ms N  periodic snapshot cadence, 0 = only on\n"
      "                            shutdown (default 5000)\n"
      "  --drain-ms N        graceful-drain deadline on shutdown "
      "(default 5000)\n"
      "  --read-deadline-ms N   cut a connection that sends no complete\n"
      "                         request within N ms, 0 = off "
      "(default 30000)\n"
      "  --write-deadline-ms N  drop a peer that stops reading for N ms,\n"
      "                         0 = off (default 10000)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  ServiceOptions service_options;
  service_options.jobs = 2;
  ServerOptions server_options;
  server_options.handler_threads = 8;
  server_options.read_deadline_ms = 30'000;
  server_options.write_deadline_ms = 10'000;
  int64_t world_scale = 1;
  uint64_t world_seed = 42;
  std::string snapshot_path;
  int64_t snapshot_interval_ms = 5'000;
  int64_t drain_ms = 5'000;

  // Every numeric flag goes through the validated ParseInt64InRange helper
  // (shared with kolaverify): junk or out-of-range values are a usage
  // error with the offending text echoed back, never an abort.
  auto int64_flag = [&](int i, int64_t min, int64_t max) -> int64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "kolad: %s needs a value\n", argv[i]);
      Usage(argv[0]);
      std::exit(1);
    }
    auto value = ParseInt64InRange(argv[i + 1], argv[i], min, max);
    if (!value.ok()) {
      std::fprintf(stderr, "kolad: %s\n", value.status().ToString().c_str());
      std::exit(1);
    }
    return value.value();
  };

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--port") {
      server_options.port = static_cast<int>(int64_flag(i++, 0, 65535));
    } else if (arg == "--jobs") {
      service_options.jobs = static_cast<int>(int64_flag(i++, 1, 4096));
    } else if (arg == "--handlers") {
      server_options.handler_threads =
          static_cast<int>(int64_flag(i++, 1, 4096));
    } else if (arg == "--cache-capacity") {
      service_options.cache_capacity =
          static_cast<size_t>(int64_flag(i++, 0, int64_t{1} << 32));
    } else if (arg == "--max-inflight") {
      service_options.max_inflight =
          static_cast<int>(int64_flag(i++, 0, 1 << 20));
    } else if (arg == "--world-scale") {
      world_scale = int64_flag(i++, 1, 1'000'000);
    } else if (arg == "--seed") {
      world_seed = static_cast<uint64_t>(
          int64_flag(i++, 0, int64_t{1} << 62));
    } else if (arg == "--no-cache") {
      service_options.cache_enabled = false;
    } else if (arg == "--snapshot-path") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kolad: --snapshot-path needs a value\n");
        Usage(argv[0]);
        return 1;
      }
      snapshot_path = argv[++i];
    } else if (arg == "--snapshot-interval-ms") {
      snapshot_interval_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--drain-ms") {
      drain_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--read-deadline-ms") {
      server_options.read_deadline_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--write-deadline-ms") {
      server_options.write_deadline_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "kolad: unknown flag '%s'\n", argv[i]);
      Usage(argv[0]);
      return 1;
    }
  }

  CarWorldOptions world;
  world.num_persons *= world_scale;
  world.num_addresses *= world_scale;
  world.num_vehicles *= world_scale;
  world.seed = world_seed;
  auto db = BuildCarWorld(world);
  PropertyStore properties = PropertyStore::Default();

  OptimizationService service(db.get(), &properties, service_options);

  // Restore BEFORE serving traffic: warm hits are available from the first
  // request, and restore never races Handle's interning.
  if (!snapshot_path.empty()) {
    SnapshotRestoreReport restore = service.RestoreSnapshot(snapshot_path);
    if (restore.status.ok() || restore.status.code() == StatusCode::kNotFound) {
      std::printf("kolad restored %llu plans (%llu skipped) from %s\n",
                  static_cast<unsigned long long>(restore.restored),
                  static_cast<unsigned long long>(restore.skipped),
                  snapshot_path.c_str());
    } else {
      std::printf("kolad restored 0 plans (snapshot unreadable: %s)\n",
                  restore.status.ToString().c_str());
    }
    std::fflush(stdout);
  }

  SocketServer server(&service, server_options);
  service.set_extra_stats([&server] { return server.StatsLine(); });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "kolad: %s\n", status.ToString().c_str());
    return 1;
  }

  // SIGINT/SIGTERM run the same graceful path as the SHUTDOWN verb: wake
  // Wait(), then drain + snapshot below.
  if (pipe(g_signal_pipe) == 0) {
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);
  }
  std::thread signal_watcher([&server] {
    char byte;
    if (g_signal_pipe[0] >= 0 &&
        read(g_signal_pipe[0], &byte, 1) > 0) {
      server.RequestShutdown();
    }
  });

  // Periodic checkpoints bound how much warm state a SIGKILL can cost.
  std::mutex snapshot_mu;
  std::condition_variable snapshot_cv;
  bool snapshot_done = false;
  std::thread snapshotter;
  if (!snapshot_path.empty() && snapshot_interval_ms > 0) {
    snapshotter = std::thread([&] {
      std::unique_lock<std::mutex> lock(snapshot_mu);
      while (!snapshot_cv.wait_for(
          lock, std::chrono::milliseconds(snapshot_interval_ms),
          [&] { return snapshot_done; })) {
        lock.unlock();
        if (Status s = service.SaveSnapshot(snapshot_path); !s.ok()) {
          std::fprintf(stderr, "kolad: %s\n", s.ToString().c_str());
        }
        lock.lock();
      }
    });
  }

  std::printf("kolad listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  server.Wait();

  // Graceful shutdown: stop accepting and let in-flight requests finish
  // (their plans land in the cache), then checkpoint that final state.
  if (!server.Drain(drain_ms)) {
    std::fprintf(stderr, "kolad: drain deadline expired; dropping "
                         "stragglers\n");
  }
  if (snapshotter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu);
      snapshot_done = true;
    }
    snapshot_cv.notify_all();
    snapshotter.join();
  }
  if (!snapshot_path.empty()) {
    if (Status s = service.SaveSnapshot(snapshot_path); !s.ok()) {
      std::fprintf(stderr, "kolad: %s\n", s.ToString().c_str());
    }
  }
  server.Stop();

  // Unblock and join the watcher whichever path stopped us.
  if (g_signal_pipe[1] >= 0) {
    char byte = 0;
    (void)!write(g_signal_pipe[1], &byte, 1);
  }
  signal_watcher.join();
  if (g_signal_pipe[0] >= 0) close(g_signal_pipe[0]);
  if (g_signal_pipe[1] >= 0) close(g_signal_pipe[1]);

  ServiceStats stats = service.stats();
  std::printf("kolad served %llu requests (%llu parse errors, %llu shed); "
              "cache hits=%llu misses=%llu evictions=%llu; "
              "snapshots=%llu restored=%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.snapshot_writes),
              static_cast<unsigned long long>(stats.restored_entries));
  return 0;
}
