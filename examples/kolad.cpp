// kolad -- the KOLA optimization daemon.
//
// A long-lived service wrapping OptimizationService + SocketServer: accepts
// KOLA/OQL/AQUA query text over a line-oriented TCP protocol on 127.0.0.1,
// optimizes each request under its QoS tier's resource envelope, and
// answers repeated query shapes from the plan cache.
//
//   kolad --port 7070 --jobs 4 --snapshot-path /var/tmp/kola.snap &
//   printf 'Q gold oql select p.name from p in P\n' | nc 127.0.0.1 7070
//
// Protocol (one request per line; final response line starts OK or ERR):
//   Q <tier> <lang> <query>   optimize (cache lookup + fill)
//   F <tier> <lang> <query>   optimize, bypassing the cache entirely
//   STATS                     service counters, one "S ..." line each
//   BUMP                      invalidate the plan cache (catalog change)
//   PING                      liveness probe ("OK draining" once draining)
//   HEALTH                    READY|SYNCING|DRAINING + role + lag
//   SYNC                      ship a checksummed plan-cache snapshot
//   QUIT                      close this connection
//   SHUTDOWN                  stop the daemon
//
// Crash-free by construction: malformed input, oversized lines, exhausted
// budgets and dropped peers all degrade to per-request or per-connection
// errors. Crash-RECOVERABLE with --snapshot-path: the plan cache is
// periodically checkpointed (atomic tmp+rename, per-entry checksums) and
// restored on the next start, so a SIGKILL costs warm state only since the
// last snapshot interval. SIGINT/SIGTERM and SHUTDOWN run the graceful
// path: drain in-flight connections, take a final snapshot, exit. SIGHUP
// takes a snapshot immediately (a pre-upgrade checkpoint hook).
//
// REPLICATED with --replica-of HOST:PORT: this daemon starts as a warm
// standby that poll-syncs the primary's plan cache over SYNC, serves reads
// once the first sync lands (ERR NOT_READY before that), refuses BUMP, and
// promotes itself to primary after --promote-after consecutive failed
// syncs (a kill -9'd primary). See DESIGN.md section 13.

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/parse_number.h"
#include "rewrite/properties.h"
#include "service/replication.h"
#include "service/server.h"
#include "service/service.h"
#include "values/car_world.h"

using namespace kola;

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int sig) {
  // Async-signal-safe nudge; the watcher thread does the real work. One
  // byte per signal, 'H' for the snapshot-now hook, 'T' for shutdown.
  char byte = sig == SIGHUP ? 'H' : 'T';
  (void)!write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--jobs N] [--handlers N] [--cache-capacity N]\n"
      "          [--max-inflight N] [--world-scale N] [--seed N] "
      "[--no-cache]\n"
      "          [--snapshot-path FILE] [--snapshot-interval-ms N]\n"
      "          [--drain-ms N] [--read-deadline-ms N] "
      "[--write-deadline-ms N]\n"
      "          [--replica-of HOST:PORT] [--sync-interval-ms N] "
      "[--promote-after N]\n"
      "  --port N            TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --jobs N            concurrent optimizations (default 2)\n"
      "  --handlers N        concurrently served connections (default 8)\n"
      "  --cache-capacity N  plan-cache entries, 0 = unbounded "
      "(default 4096)\n"
      "  --max-inflight N    shed requests past this many in flight, "
      "0 = off\n"
      "  --world-scale N     catalog size multiplier (default 1)\n"
      "  --seed N            world seed (default 42)\n"
      "  --no-cache          disable the plan cache\n"
      "  --snapshot-path FILE      persist the plan cache here; restored on\n"
      "                            startup (default off)\n"
      "  --snapshot-interval-ms N  periodic snapshot cadence, 0 = only on\n"
      "                            shutdown (default 5000)\n"
      "  --drain-ms N        graceful-drain deadline on shutdown "
      "(default 5000)\n"
      "  --read-deadline-ms N   cut a connection that sends no complete\n"
      "                         request within N ms, 0 = off "
      "(default 30000)\n"
      "  --write-deadline-ms N  drop a peer that stops reading for N ms,\n"
      "                         0 = off (default 10000)\n"
      "  --replica-of HOST:PORT  start as a warm standby of that primary\n"
      "                          (loopback only); serve reads after the\n"
      "                          first sync, refuse BUMP until promoted\n"
      "  --sync-interval-ms N    standby poll-sync cadence (default 500)\n"
      "  --promote-after N       promote after N consecutive failed syncs,\n"
      "                          0 = never (default 5)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  ServiceOptions service_options;
  service_options.jobs = 2;
  ServerOptions server_options;
  server_options.handler_threads = 8;
  server_options.read_deadline_ms = 30'000;
  server_options.write_deadline_ms = 10'000;
  int64_t world_scale = 1;
  uint64_t world_seed = 42;
  std::string snapshot_path;
  int64_t snapshot_interval_ms = 5'000;
  int64_t drain_ms = 5'000;
  ReplicationOptions repl_options;
  bool standby = false;

  // Every numeric flag goes through the validated ParseInt64InRange helper
  // (shared with kolaverify): junk or out-of-range values are a usage
  // error with the offending text echoed back, never an abort.
  auto int64_flag = [&](int i, int64_t min, int64_t max) -> int64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "kolad: %s needs a value\n", argv[i]);
      Usage(argv[0]);
      std::exit(1);
    }
    auto value = ParseInt64InRange(argv[i + 1], argv[i], min, max);
    if (!value.ok()) {
      std::fprintf(stderr, "kolad: %s\n", value.status().ToString().c_str());
      std::exit(1);
    }
    return value.value();
  };

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--port") {
      server_options.port = static_cast<int>(int64_flag(i++, 0, 65535));
    } else if (arg == "--jobs") {
      service_options.jobs = static_cast<int>(int64_flag(i++, 1, 4096));
    } else if (arg == "--handlers") {
      server_options.handler_threads =
          static_cast<int>(int64_flag(i++, 1, 4096));
    } else if (arg == "--cache-capacity") {
      service_options.cache_capacity =
          static_cast<size_t>(int64_flag(i++, 0, int64_t{1} << 32));
    } else if (arg == "--max-inflight") {
      service_options.max_inflight =
          static_cast<int>(int64_flag(i++, 0, 1 << 20));
    } else if (arg == "--world-scale") {
      world_scale = int64_flag(i++, 1, 1'000'000);
    } else if (arg == "--seed") {
      world_seed = static_cast<uint64_t>(
          int64_flag(i++, 0, int64_t{1} << 62));
    } else if (arg == "--no-cache") {
      service_options.cache_enabled = false;
    } else if (arg == "--snapshot-path") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kolad: --snapshot-path needs a value\n");
        Usage(argv[0]);
        return 1;
      }
      snapshot_path = argv[++i];
    } else if (arg == "--snapshot-interval-ms") {
      snapshot_interval_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--drain-ms") {
      drain_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--read-deadline-ms") {
      server_options.read_deadline_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--write-deadline-ms") {
      server_options.write_deadline_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--replica-of") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kolad: --replica-of needs HOST:PORT\n");
        Usage(argv[0]);
        return 1;
      }
      std::string endpoint = argv[++i];
      size_t colon = endpoint.rfind(':');
      std::string host =
          colon == std::string::npos ? "" : endpoint.substr(0, colon);
      if (host != "127.0.0.1" && host != "localhost") {
        std::fprintf(stderr,
                     "kolad: --replica-of supports loopback primaries only "
                     "(got '%s')\n",
                     endpoint.c_str());
        return 1;
      }
      auto port = ParseInt64InRange(endpoint.substr(colon + 1).c_str(),
                                    "--replica-of port", 1, 65535);
      if (!port.ok()) {
        std::fprintf(stderr, "kolad: %s\n",
                     port.status().ToString().c_str());
        return 1;
      }
      repl_options.port = static_cast<int>(port.value());
      standby = true;
    } else if (arg == "--sync-interval-ms") {
      repl_options.sync_interval_ms = int64_flag(i++, 1, int64_t{1} << 40);
    } else if (arg == "--promote-after") {
      repl_options.promote_after_failures =
          static_cast<int>(int64_flag(i++, 0, 1 << 20));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "kolad: unknown flag '%s'\n", argv[i]);
      Usage(argv[0]);
      return 1;
    }
  }

  service_options.standby = standby;

  CarWorldOptions world;
  world.num_persons *= world_scale;
  world.num_addresses *= world_scale;
  world.num_vehicles *= world_scale;
  world.seed = world_seed;
  auto db = BuildCarWorld(world);
  PropertyStore properties = PropertyStore::Default();

  OptimizationService service(db.get(), &properties, service_options);

  // Restore BEFORE serving traffic: warm hits are available from the first
  // request, and restore never races Handle's interning. On a standby the
  // restore only pre-warms the cache -- it does NOT mark the daemon ready;
  // only a live sync from the primary can do that.
  if (!snapshot_path.empty()) {
    SnapshotRestoreReport restore = service.RestoreSnapshot(snapshot_path);
    if (restore.status.ok() || restore.status.code() == StatusCode::kNotFound) {
      std::printf("kolad restored %llu plans (%llu skipped) from %s\n",
                  static_cast<unsigned long long>(restore.restored),
                  static_cast<unsigned long long>(restore.skipped),
                  snapshot_path.c_str());
    } else {
      std::printf("kolad restored 0 plans (snapshot unreadable: %s)\n",
                  restore.status.ToString().c_str());
    }
    std::fflush(stdout);
  }

  SocketServer server(&service, server_options);
  service.set_extra_stats([&server] { return server.StatsLine(); });
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "kolad: %s\n", status.ToString().c_str());
    return 1;
  }

  // Periodic checkpoints bound how much warm state a SIGKILL can cost.
  // SIGHUP pokes the same thread through snapshot_now for an immediate
  // checkpoint (pre-upgrade hook), even when the periodic cadence is off.
  std::mutex snapshot_mu;
  std::condition_variable snapshot_cv;
  bool snapshot_done = false;
  bool snapshot_now = false;
  std::thread snapshotter;
  if (!snapshot_path.empty()) {
    snapshotter = std::thread([&] {
      std::unique_lock<std::mutex> lock(snapshot_mu);
      for (;;) {
        if (snapshot_interval_ms > 0) {
          snapshot_cv.wait_for(
              lock, std::chrono::milliseconds(snapshot_interval_ms),
              [&] { return snapshot_done || snapshot_now; });
        } else {
          snapshot_cv.wait(lock,
                           [&] { return snapshot_done || snapshot_now; });
        }
        if (snapshot_done) return;
        snapshot_now = false;  // timeout or SIGHUP: snapshot either way
        lock.unlock();
        if (Status s = service.SaveSnapshot(snapshot_path); !s.ok()) {
          std::fprintf(stderr, "kolad: %s\n", s.ToString().c_str());
        }
        lock.lock();
      }
    });
  }

  // SIGINT/SIGTERM run the same graceful path as the SHUTDOWN verb: wake
  // Wait(), then drain + snapshot below. SIGHUP checkpoints and keeps
  // serving.
  if (pipe(g_signal_pipe) == 0) {
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);
    std::signal(SIGHUP, OnSignal);
  }
  std::thread signal_watcher([&] {
    char byte;
    while (g_signal_pipe[0] >= 0 &&
           read(g_signal_pipe[0], &byte, 1) > 0) {
      if (byte == 'H') {
        {
          std::lock_guard<std::mutex> lock(snapshot_mu);
          snapshot_now = true;
        }
        snapshot_cv.notify_all();  // no-op without --snapshot-path
        continue;
      }
      server.RequestShutdown();
      return;
    }
  });

  // Standby mode: follow the primary until promoted or shut down.
  std::unique_ptr<ReplicationClient> replication;
  if (standby) {
    replication = std::make_unique<ReplicationClient>(&service, repl_options);
    replication->Start();
    std::printf("kolad standby of 127.0.0.1:%d (sync every %lld ms, "
                "promote after %d failures)\n",
                repl_options.port,
                static_cast<long long>(repl_options.sync_interval_ms),
                repl_options.promote_after_failures);
  }

  std::printf("kolad listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  server.Wait();

  // Stop syncing first so a drain cannot race a promotion or a late apply.
  if (replication != nullptr) replication->Stop();

  // Graceful shutdown: stop accepting and let in-flight requests finish
  // (their plans land in the cache), then checkpoint that final state.
  if (!server.Drain(drain_ms)) {
    std::fprintf(stderr, "kolad: drain deadline expired; dropping "
                         "stragglers\n");
  }
  if (snapshotter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu);
      snapshot_done = true;
    }
    snapshot_cv.notify_all();
    snapshotter.join();
  }
  if (!snapshot_path.empty()) {
    if (Status s = service.SaveSnapshot(snapshot_path); !s.ok()) {
      std::fprintf(stderr, "kolad: %s\n", s.ToString().c_str());
    }
  }
  server.Stop();

  // Unblock and join the watcher whichever path stopped us.
  if (g_signal_pipe[1] >= 0) {
    char byte = 0;
    (void)!write(g_signal_pipe[1], &byte, 1);
  }
  signal_watcher.join();
  if (g_signal_pipe[0] >= 0) close(g_signal_pipe[0]);
  if (g_signal_pipe[1] >= 0) close(g_signal_pipe[1]);

  ServiceStats stats = service.stats();
  std::printf("kolad served %llu requests (%llu parse errors, %llu shed); "
              "cache hits=%llu misses=%llu evictions=%llu; "
              "snapshots=%llu restored=%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.snapshot_writes),
              static_cast<unsigned long long>(stats.restored_entries));
  return 0;
}
