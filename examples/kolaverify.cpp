// kolaverify: end-to-end optimizer soundness harness.
//
// Differentially tests the full optimizer pipeline: every trial generates
// a random well-typed query, builds a fresh random database, evaluates the
// query un-optimized (naive nested-loop semantics) as ground truth, then
// optimizes and re-evaluates under every cell of the engine configuration
// matrix (term interning x fixpoint memoization x physical fastpaths).
// Any result disagreement is shrunk to a minimal query + world and printed
// with a one-line replay command.
//
//   kolaverify                          # 1000 trials, full config matrix
//   kolaverify --trials 50 --seed 7     # quick CI smoke
//   kolaverify --jobs 4                 # same report, 4 worker threads
//   kolaverify --plant-unsound          # prove the detector detects
//   kolaverify --chaos                  # deterministic fault injection:
//                                       # verdicts may degrade or skip,
//                                       # never go unsound
//   kolaverify --deadline-ms 50         # per-stage wall-clock budget
//   kolaverify --memory-budget 65536    # per-stage byte budget: tight
//                                       # memory degrades, never unsounds
//   kolaverify --memory-budget 4096 --retries 2   # escalate degraded
//                                       # passes through bigger budgets
//   kolaverify --replay 'iterate(Kp(T), age) ! P' --world-seed 12345
//              --world-scale 1 --config memo+fast
//
// Exit status: 0 when clean, 1 on any divergence (or bad usage).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "common/parse_number.h"
#include "common/thread_pool.h"
#include "term/parser.h"
#include "verify/soundness.h"

namespace {

// The --chaos schedule: every fault site armed, interner faults (which
// only cost canonicalization, never soundness) an order of magnitude
// hotter than the fail-the-phase sites.
constexpr char kChaosSpec[] = "rule:0.02,strategy:0.02,intern:0.1,pool:0.02";

void PrintUsage() {
  std::printf(
      "usage: kolaverify [options]\n"
      "  --trials N        queries to generate (default 1000)\n"
      "  --seed N          harness seed (default 1)\n"
      "  --depth N         generator depth budget (default 3)\n"
      "  --jobs N          worker threads (default: hardware concurrency);\n"
      "                    the report is bit-identical for every N\n"
      "  --config NAME     check one config instead of the full matrix;\n"
      "                    NAME is '+'-joined from intern, memo, fast,\n"
      "                    or 'plain' (e.g. memo+fast)\n"
      "  --plant-unsound   plant a deliberately broken rule; the harness\n"
      "                    must catch and shrink it (exit 1 = caught)\n"
      "  --deadline-ms N   wall-clock budget per pipeline stage; deadline\n"
      "                    hits degrade (optimizer) or skip (evaluation),\n"
      "                    never fail a trial (default 0 = ungoverned)\n"
      "  --memory-budget N byte budget per pipeline stage (interner arena,\n"
      "                    fixpoint cache, exploration frontier, evaluator\n"
      "                    scratch); exhaustion degrades or skips, never\n"
      "                    fails a trial (default 0 = unlimited)\n"
      "  --retries N       escalation retries for memory-degraded passes:\n"
      "                    each retry doubles (roughly) the byte budget;\n"
      "                    still-degraded passes are quarantined (needs\n"
      "                    --memory-budget; default 0)\n"
      "  --faults SPEC     inject faults, SPEC is site:rate,... over the\n"
      "                    sites rule, strategy, intern, pool\n"
      "                    (e.g. rule:0.02,intern:0.1)\n"
      "  --fault-seed N    base seed for the fault streams (default 1);\n"
      "                    a fixed seed replays the exact chaos schedule\n"
      "                    at every --jobs level\n"
      "  --chaos           shorthand for --faults '%s'\n"
      "  --no-shrink       report divergences unminimized\n"
      "  --replay QUERY    re-check one query instead of generating;\n"
      "                    combine with --world-seed/--world-scale/\n"
      "                    --config/--deadline-ms/--memory-budget/\n"
      "                    --retries/--faults/--fault-seed\n"
      "  --world-seed N    replay: random-world seed\n"
      "  --world-scale N   replay: random-world scale\n",
      kChaosSpec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  SoundnessOptions options;
  options.jobs = HardwareJobs();
  std::string replay_text;
  uint64_t world_seed = 1;
  int world_scale = 3;
  bool have_world_seed = false;
  bool plant = false;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      PrintUsage();
      std::exit(1);
    }
    return argv[i + 1];
  };
  // Numeric flags go through the validated parser: `--trials abc` and
  // overlong values are hard usage errors, never a silent 0 or UB (the old
  // std::atoi behavior).
  auto int_flag = [&](int i, int min, int max) -> int {
    auto value = ParseIntInRange(need_value(i), argv[i], min, max);
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
      std::exit(1);
    }
    return *value;
  };
  auto int64_flag = [&](int i, int64_t min, int64_t max) -> int64_t {
    auto value = ParseInt64InRange(need_value(i), argv[i], min, max);
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
      std::exit(1);
    }
    return *value;
  };
  auto uint64_flag = [&](int i) -> uint64_t {
    auto value = ParseUint64(need_value(i));
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n",
                   value.status().WithContext(argv[i]).ToString().c_str());
      std::exit(1);
    }
    return *value;
  };

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0) {
      options.trials = int_flag(i++, 0, 100'000'000);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = uint64_flag(i++);
    } else if (std::strcmp(argv[i], "--depth") == 0) {
      options.gen_depth = int_flag(i++, 0, 64);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      options.jobs = int_flag(i++, 1, 4096);
    } else if (std::strcmp(argv[i], "--config") == 0) {
      auto config = ParsePipelineConfig(need_value(i++));
      if (!config.ok()) {
        std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
        return 1;
      }
      options.configs = {config.value()};
    } else if (std::strcmp(argv[i], "--plant-unsound") == 0) {
      plant = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      options.deadline_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (std::strcmp(argv[i], "--memory-budget") == 0) {
      options.memory_budget_bytes = int64_flag(i++, 0, int64_t{1} << 50);
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      options.retries = int_flag(i++, 0, 64);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.fault_spec = need_value(i++);
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      options.fault_seed = uint64_flag(i++);
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      options.fault_spec = kChaosSpec;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_text = need_value(i++);
    } else if (std::strcmp(argv[i], "--world-seed") == 0) {
      world_seed = uint64_flag(i++);
      have_world_seed = true;
    } else if (std::strcmp(argv[i], "--world-scale") == 0) {
      world_scale = int_flag(i++, 0, 1'000'000);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      PrintUsage();
      return 1;
    }
  }

  if (options.retries > 0 && options.memory_budget_bytes <= 0) {
    std::fprintf(stderr, "--retries needs --memory-budget\n");
    PrintUsage();
    return 1;
  }

  if (plant) options.extra_rules.push_back(PlantedDropMapRule());

  if (!replay_text.empty()) {
    auto query = ParseQuery(replay_text);
    if (!query.ok()) {
      std::fprintf(stderr, "cannot parse replay query: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    if (!have_world_seed) {
      std::fprintf(stderr,
                   "--replay needs --world-seed (and usually "
                   "--world-scale)\n");
      return 1;
    }
    RandomWorldOptions world;
    world.seed = world_seed;
    world.scale = world_scale;
    SoundnessHarness harness(options);
    const PipelineConfig config =
        options.configs.size() == 1 ? options.configs[0] : PipelineConfig{};
    auto divergence = harness.CheckQuery(query.value(), world, config);
    if (!divergence.ok()) {
      std::fprintf(stderr, "%s\n", divergence.status().ToString().c_str());
      return 1;
    }
    if (!divergence->has_value()) {
      std::printf("replay: no divergence (query and optimized plans agree "
                  "on world seed=%llu scale=%d, config %s)\n",
                  static_cast<unsigned long long>(world_seed), world_scale,
                  config.Name().c_str());
      return 0;
    }
    std::printf("%s", (*divergence)->Report().c_str());
    return 1;
  }

  SoundnessHarness harness(options);
  auto report = harness.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "harness failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const Divergence& failure : report->failures) {
    std::printf("%s\n", failure.Report().c_str());
  }
  std::printf("%s\n", report->Summary().c_str());
  return report->clean() ? 0 : 1;
}
