// kolash -- an interactive shell over the whole stack. Type OQL, AQUA or
// KOLA queries against the demo database; inspect translation, the
// optimizer's derivation, costs, and results.
//
//   ./examples/kolash            interactive
//   echo "select p.name from p in P where p.age > 30" | ./examples/kolash
//
// Commands:
//   :mode oql|aqua|kola   input language (default oql)
//   :trace on|off         print the optimizer's rule-by-rule derivation
//   :rules <substring>    list catalog rules matching the substring
//   :verify <rule-id>     randomized soundness check of one catalog rule
//   :schema               show extents and their sizes
//   :stats                interner occupancy, fixpoint-cache hit rates,
//                         and per-category memory charged this session
//   :help                 this text
//   :quit                 exit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "aqua/parser.h"
#include "common/fault_injection.h"
#include "eval/evaluator.h"
#include "oql/oql.h"
#include "optimizer/optimizer.h"
#include "rewrite/rule_index.h"
#include "rewrite/verifier.h"
#include "rules/catalog.h"
#include "term/intern.h"
#include "term/parser.h"
#include "translate/translate.h"
#include "values/car_world.h"

namespace {

using namespace kola;  // NOLINT: example brevity

enum class Mode { kOql, kAqua, kKola };

void PrintHelp() {
  std::printf(
      "  :mode oql|aqua|kola   input language\n"
      "  :trace on|off         print the optimizer derivation\n"
      "  :rules <substring>    list catalog rules\n"
      "  :verify <rule-id>     randomized soundness check of one rule\n"
      "  :schema               show extents\n"
      "  :stats                interner / cache / memory statistics\n"
      "  :help                 this text\n"
      "  :quit                 exit\n");
}

StatusOr<TermPtr> ParseInput(Mode mode, const std::string& line) {
  Translator translator;
  switch (mode) {
    case Mode::kOql: {
      auto lowered = oql::ParseOql(line);
      if (!lowered.ok()) return lowered.status();
      return translator.TranslateQuery(lowered.value());
    }
    case Mode::kAqua: {
      auto expr = aqua::ParseAqua(line);
      if (!expr.ok()) return expr.status();
      return translator.TranslateQuery(expr.value());
    }
    case Mode::kKola:
      return ParseQuery(line);
  }
  return InternalError("bad mode");
}

}  // namespace

int main() {
  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  CarWorldOptions options;
  options.num_persons = 20;
  options.num_vehicles = 12;
  options.num_addresses = 8;
  options.seed = 1;
  auto db = BuildCarWorld(options);
  PropertyStore properties = PropertyStore::Default();

  // Session-long accounting governor: no limits (a byte budget of 0 never
  // exhausts), so it is a pure meter -- every interner insertion, fixpoint
  // cache entry, exploration frontier and evaluator materialization
  // charges it, and :stats reads the running totals back.
  Governor session_governor{Governor::Limits{}};
  ScopedMemoryGovernor memory_scope(&session_governor);
  // Intern every term for the session so :stats can show arena occupancy
  // (interning is semantics-free; it only canonicalizes pointers).
  ScopedInterning session_interning(true);

  RewriterOptions engine_options = RewriterOptions::Defaults();
  engine_options.governor = &session_governor;
  Optimizer optimizer(&properties, db.get(), engine_options);
  std::vector<Rule> catalog = AllCatalogRules();

  Mode mode = Mode::kOql;
  bool trace = false;
  bool tty = true;

  std::printf("kolash -- KOLA interactive shell (:help for commands)\n");
  std::string line;
  while (true) {
    if (tty) std::printf("kola> ");
    if (!std::getline(std::cin, line)) break;
    // Trim.
    size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t");
    line = line.substr(begin, end - begin + 1);
    if (line.empty()) continue;

    if (line[0] == ':') {
      std::istringstream args(line.substr(1));
      std::string command, argument;
      args >> command;
      std::getline(args, argument);
      if (!argument.empty() && argument[0] == ' ') argument.erase(0, 1);
      if (command == "quit" || command == "q") break;
      if (command == "help") {
        PrintHelp();
      } else if (command == "mode") {
        if (argument == "oql") mode = Mode::kOql;
        else if (argument == "aqua") mode = Mode::kAqua;
        else if (argument == "kola") mode = Mode::kKola;
        else std::printf("unknown mode '%s'\n", argument.c_str());
      } else if (command == "trace") {
        trace = argument != "off";
      } else if (command == "schema") {
        for (const std::string& name : db->ExtentNames()) {
          auto extent = db->Extent(name);
          std::printf("  %-6s %zu elements\n", name.c_str(),
                      extent.ok() ? extent->SetSize() : 0);
        }
      } else if (command == "stats") {
        const TermInterner& interner = GlobalTermInterner();
        std::printf("  interner:        %zu terms, %lld bytes\n",
                    interner.size(),
                    static_cast<long long>(interner.bytes()));
        Rewriter::CacheStats caches = optimizer.rewriter().PooledCacheStats();
        std::printf("  fixpoint caches: %zu caches, %zu entries, "
                    "%llu hits / %llu misses / %llu evictions\n",
                    caches.caches, caches.entries,
                    static_cast<unsigned long long>(caches.hits),
                    static_cast<unsigned long long>(caches.misses),
                    static_cast<unsigned long long>(caches.evictions));
        const RuleIndexCacheStats indexes = GetRuleIndexCacheStats();
        std::printf("  rule indexes:    %zu compiled, %lld bytes, "
                    "%llu hits / %llu misses\n",
                    indexes.indexes, static_cast<long long>(indexes.bytes),
                    static_cast<unsigned long long>(indexes.hits),
                    static_cast<unsigned long long>(indexes.misses));
        const MemoryBudget& memory = session_governor.memory();
        std::printf("  memory charged:  %lld bytes live, %lld peak\n",
                    static_cast<long long>(memory.total_charged()),
                    static_cast<long long>(memory.peak_bytes()));
        for (int c = 0; c < kNumMemoryCategories; ++c) {
          auto category = static_cast<MemoryCategory>(c);
          std::printf("    %-17s %lld bytes\n",
                      MemoryCategoryName(category),
                      static_cast<long long>(memory.charged(category)));
        }
      } else if (command == "rules") {
        int shown = 0;
        for (const Rule& rule : catalog) {
          if (argument.empty() ||
              rule.ToString().find(argument) != std::string::npos) {
            std::printf("  %s\n", rule.ToString().c_str());
            ++shown;
          }
        }
        std::printf("  (%d rules)\n", shown);
      } else if (command == "verify") {
        // User-typed rule id: an unknown id must report, never abort.
        auto rule = TryFindRule(catalog, argument);
        if (!rule.ok()) {
          std::printf("error: %s\n", rule.status().ToString().c_str());
          continue;
        }
        SchemaTypes schema = SchemaTypes::CarWorld();
        VerifyOptions verify_options;
        verify_options.trials = 200;
        auto outcome = VerifyRule(*rule.value(), *db, schema, verify_options);
        if (!outcome.ok()) {
          std::printf("error: %s\n", outcome.status().ToString().c_str());
          continue;
        }
        std::printf("%s: %s\n", argument.c_str(),
                    outcome->Summary().c_str());
        if (!outcome->counterexample.empty()) {
          std::printf("  counterexample: %s\n",
                      outcome->counterexample.c_str());
        }
      } else {
        std::printf("unknown command :%s (:help)\n", command.c_str());
      }
      continue;
    }

    auto query = ParseInput(mode, line);
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    std::printf("kola:      %s\n", query.value()->ToString().c_str());

    auto plan = optimizer.Optimize(query.value());
    if (!plan.ok()) {
      std::printf("optimizer error: %s\n",
                  plan.status().ToString().c_str());
      continue;
    }
    if (plan->degradation.degraded) {
      std::printf("degraded:  %s\n", plan->degradation.ToString().c_str());
    }
    if (!Term::Equal(plan->query, query.value())) {
      std::printf("optimized: %s\n", plan->query->ToString().c_str());
      std::printf("cost:      %.0f -> %.0f\n", plan->cost_before,
                  plan->cost_after);
    }
    if (trace && !plan->trace.steps.empty()) {
      std::printf("%s", plan->trace.ToString().c_str());
    }

    Evaluator evaluator(db.get(),
                        EvalOptions{.governor = &session_governor});
    auto value = evaluator.EvalObject(plan->query);
    if (!value.ok()) {
      std::printf("evaluation error: %s\n",
                  value.status().ToString().c_str());
      continue;
    }
    std::printf("result:    %s\n", value.value().ToString().c_str());
    std::printf("           (%lld evaluator steps)\n",
                static_cast<long long>(evaluator.steps()));
  }
  return 0;
}
