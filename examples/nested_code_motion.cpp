// Figure 2 / Figure 6, side by side: two nested queries that look
// identical in the variable-based algebra -- A3 ("children older than 25")
// and A4 ("children, if the PARENT is older than 25") -- and how each
// representation decides which one admits code motion.
//
// Over AQUA, the decision needs a freeness head routine (code). Over KOLA,
// the two queries differ structurally (pi2 vs pi1 inside the predicate)
// and a single rule match decides.

#include <cstdio>

#include "aqua/transform.h"
#include "common/fault_injection.h"
#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "translate/translate.h"
#include "values/car_world.h"

int main() {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }


  std::printf("A3: %s\n", aqua::QueryA3()->ToString().c_str());
  std::printf("A4: %s\n", aqua::QueryA4()->ToString().c_str());
  std::printf("(structurally identical: same shape, %zu nodes each; they "
              "differ in ONE variable)\n\n",
              aqua::QueryA3()->node_count());

  std::printf("--- the variable-based route (head routine) ---\n");
  for (bool fourth : {false, true}) {
    aqua::AquaTransformStats stats;
    auto result = aqua::AquaCodeMotion(
        fourth ? aqua::QueryA4() : aqua::QueryA3(), &stats);
    std::printf("A%d: %s after analyzing %d predicate nodes for free "
                "variables\n",
                fourth ? 4 : 3, result.ok() ? "HOISTED" : "rejected",
                stats.head_ops);
    if (result.ok()) {
      std::printf("    -> %s\n", result.value()->ToString().c_str());
    }
  }

  std::printf("\n--- the KOLA route (pure matching) ---\n");
  Translator translator;
  Rewriter rewriter;
  for (bool fourth : {false, true}) {
    auto kola = translator.TranslateQuery(fourth ? aqua::QueryA4()
                                                 : aqua::QueryA3());
    if (!kola.ok()) return 1;
    std::printf("K%d: %s\n", fourth ? 4 : 3,
                kola.value()->ToString().c_str());
    auto moved = ApplyCodeMotion(kola.value(), rewriter);
    if (!moved.ok()) return 1;
    std::printf("    rule 15 %s (the predicate examines %s)\n",
                moved->moved ? "FIRED" : "did not fire",
                fourth ? "pi1 -- the environment" : "pi2 -- the element");
    if (moved->moved) {
      std::printf("    -> %s\n", moved->query->ToString().c_str());
    }
  }

  std::printf("\n--- semantics check on a real database ---\n");
  CarWorldOptions options;
  options.num_persons = 30;
  auto db = BuildCarWorld(options);
  auto k4 = translator.TranslateQuery(aqua::QueryA4());
  auto moved = ApplyCodeMotion(k4.value(), rewriter);
  auto original = EvalQuery(*db, k4.value());
  auto hoisted = EvalQuery(*db, moved->query);
  if (!original.ok() || !hoisted.ok()) return 1;
  std::printf("K4 original == K4 hoisted: %s\n",
              original.value() == hoisted.value() ? "yes" : "NO");
  return original.value() == hoisted.value() ? 0 : 1;
}
