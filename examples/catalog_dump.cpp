// Prints the entire shipped rule catalog -- id, equation, conditions --
// and (with --verify) machine-checks every rule against the operational
// semantics, reporting the pool's soundness table. The closest thing this
// repository has to the paper's appendix of Larch-proved rules.
//
//   ./examples/catalog_dump [--verify]

#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"
#include "rewrite/verifier.h"
#include "rules/catalog.h"
#include "values/car_world.h"

int main(int argc, char** argv) {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  bool verify = argc > 1 && std::strcmp(argv[1], "--verify") == 0;

  struct Section {
    const char* title;
    std::vector<Rule> rules;
  };
  Section sections[] = {
      {"Paper rules (Figures 4, 5, 8)", PaperRules()},
      {"Normalization", NormalizationRules()},
      {"Extended pool", ExtendedRules()},
      {"Bag extension (Section 6)", BagRules()},
  };

  std::unique_ptr<Database> db;
  SchemaTypes schema = SchemaTypes::CarWorld();
  if (verify) {
    CarWorldOptions options;
    options.num_persons = 10;
    db = BuildCarWorld(options);
  }

  size_t total = 0;
  int sound = 0, unverifiable = 0;
  for (const Section& section : sections) {
    std::printf("== %s (%zu rules) ==\n", section.title,
                section.rules.size());
    for (const Rule& rule : section.rules) {
      std::printf("  %s\n", rule.ToString().c_str());
      if (!rule.description.empty()) {
        std::printf("      -- %s\n", rule.description.c_str());
      }
      ++total;
      if (!verify) continue;
      VerifyOptions options;
      options.trials = 100;
      auto outcome = VerifyRule(rule, *db, schema, options);
      if (outcome.ok() && outcome->sound()) {
        ++sound;
        std::printf("      verified: %s\n", outcome->Summary().c_str());
      } else if (!outcome.ok()) {
        // Bag rules sit outside the structural type system; they are
        // property-tested in bag_test instead.
        ++unverifiable;
        std::printf("      (outside the typed verifier; see bag_test)\n");
      } else {
        std::printf("      !! %s\n", outcome->Summary().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("total: %zu rules", total);
  if (verify) {
    std::printf("; %d verified sound, %d covered by dedicated property "
                "tests",
                sound, unverifiable);
  }
  std::printf("\n");
  return 0;
}
