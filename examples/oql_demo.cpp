// The full front-to-back pipeline on user-level OQL:
//   OQL text -> AQUA (variable-based) -> KOLA (variable-free) ->
//   rule-based optimization -> execution.
//
//   ./examples/oql_demo ["select ... from ... where ..."]

#include <cstdio>

#include "aqua/eval.h"
#include "common/fault_injection.h"
#include "eval/evaluator.h"
#include "oql/oql.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "values/car_world.h"

int main(int argc, char** argv) {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }


  CarWorldOptions options;
  options.num_persons = 15;
  options.num_vehicles = 10;
  options.num_addresses = 8;
  options.seed = 99;
  auto db = BuildCarWorld(options);

  const char* text =
      argc > 1 ? argv[1]
               : "select [v, flatten((select p.grgs from p in P "
                 "where v in p.cars))] from v in V";
  std::printf("OQL:        %s\n", text);

  auto lowered = oql::ParseOql(text);
  if (!lowered.ok()) {
    std::printf("parse error: %s\n", lowered.status().ToString().c_str());
    return 1;
  }
  std::printf("AQUA:       %s\n", lowered.value()->ToString().c_str());

  Translator translator;
  auto kola_form = translator.TranslateQuery(lowered.value());
  if (!kola_form.ok()) {
    std::printf("translate error: %s\n",
                kola_form.status().ToString().c_str());
    return 1;
  }
  std::printf("KOLA:       %s\n", kola_form.value()->ToString().c_str());

  PropertyStore properties = PropertyStore::Default();
  Optimizer optimizer(&properties, db.get());
  auto plan = optimizer.Optimize(kola_form.value());
  if (!plan.ok()) {
    std::printf("optimize error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized:  %s\n", plan->query->ToString().c_str());
  std::printf("est. cost:  %.0f -> %.0f\n", plan->cost_before,
              plan->cost_after);

  Evaluator evaluator(db.get());
  auto result = evaluator.EvalObject(plan->query);
  if (!result.ok()) {
    std::printf("eval error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("rows:       %zu (in %lld evaluator steps)\n",
              result.value().is_set() ? result.value().SetSize() : 1,
              static_cast<long long>(evaluator.steps()));

  // Cross-check against the direct AQUA interpreter.
  aqua::AquaEvaluator reference(db.get());
  auto expected = reference.EvalQuery(lowered.value());
  if (!expected.ok()) return 1;
  std::printf("cross-check: %s\n", expected.value() == result.value()
                                       ? "AQUA interpreter agrees"
                                       : "MISMATCH");
  return expected.value() == result.value() ? 0 : 1;
}
