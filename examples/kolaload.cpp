// kolaload -- soak/load driver for kolad.
//
// Connects N client threads to one or more running kolad endpoints, drives
// repeated query shapes through the plan cache, and asserts service-level
// invariants:
//
//   --min-hit-rate P   post-warmup cache hit rate must reach P percent
//   --check-identity   every warm hit must be byte-identical to a fresh
//                      optimization of the same shape (the F verb bypasses
//                      the cache)
//
//   kolaload --port 7070 --clients 4 --requests 100 --shapes 8
//            --min-hit-rate 90 --check-identity --shutdown
//   kolaload --ports 7070,7071 --check-identity     # primary + standby
//
// Transient failures -- connection refused or reset, the daemon shedding
// load, an injected socket fault -- are retried with capped exponential
// backoff and seeded jitter (--max-retries, --seed), so a chaos run under
// KOLA_FAULTS only fails when the daemon stays broken.
//
// With --ports A,B,... requests fail over between endpoints: each endpoint
// sits behind a circuit breaker (opened after --breaker-threshold
// consecutive failures, probed half-open after an escalating cooldown),
// and a connection is only routed to an endpoint whose HEALTH answer says
// it is serving (a never-synced standby, or a draining daemon, is skipped).
// The identity check runs through the same pool, so it holds across a
// mid-soak failover. Every socket operation carries a poll-based deadline
// (--io-deadline-ms), so a hung daemon fails fast instead of wedging the
// driver. Exit status 0 iff every request (eventually) succeeded and every
// assertion held.

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parse_number.h"
#include "common/random.h"
#include "common/string_util.h"

using namespace kola;

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Same poll discipline as SocketServer: absolute deadline (-1 = none),
/// EINTR restarts with the remaining budget. >0 ready, 0 deadline, <0
/// error.
int PollFd(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    int timeout = -1;
    if (deadline_ms >= 0) {
      int64_t remaining = deadline_ms - NowMs();
      if (remaining <= 0) return 0;
      timeout = static_cast<int>(std::min<int64_t>(remaining, 1 << 30));
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

/// A line-protocol connection to kolad. Every operation -- connect, send,
/// read -- is bounded by the io deadline, mirroring the server's own
/// read/write deadlines: a daemon that hangs mid-response costs one
/// deadline, never a wedged soak driver.
class Conn {
 public:
  explicit Conn(int64_t io_deadline_ms) : io_deadline_ms_(io_deadline_ms) {}
  ~Conn() {
    if (fd_ >= 0) close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    // Non-blocking from the start: the deadline must bound connect() too
    // (a SIGSTOPped daemon leaves the port open but never accepts).
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 &&
        errno != EINPROGRESS) {
      return Fail();
    }
    if (PollFd(fd_, POLLOUT, Deadline()) <= 0) return Fail();
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return Fail();
    }
    return true;
  }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    const int64_t deadline = Deadline();
    size_t sent = 0;
    while (sent < framed.size()) {
      if (PollFd(fd_, POLLOUT, deadline) <= 0) return false;
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    const int64_t deadline = Deadline();
    for (;;) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (PollFd(fd_, POLLIN, deadline) <= 0) return false;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 &&
          (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;
      }
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads lines until the block terminator (a line starting "OK" or
  /// "ERR"), which is returned; "S ..." stats lines accumulate in `body`.
  bool ReadBlock(std::string* final_line, std::string* body = nullptr) {
    std::string line;
    for (;;) {
      if (!ReadLine(&line)) return false;
      if (line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0) {
        *final_line = line;
        return true;
      }
      if (body != nullptr) *body += line + "\n";
    }
  }

 private:
  int64_t Deadline() const {
    return io_deadline_ms_ > 0 ? NowMs() + io_deadline_ms_ : -1;
  }
  bool Fail() {
    close(fd_);
    fd_ = -1;
    return false;
  }

  int fd_ = -1;
  int64_t io_deadline_ms_;
  std::string buffer_;
};

/// The endpoint table shared by every client thread: --ports order is
/// preference order (primary first), and each endpoint sits behind a
/// circuit breaker. CLOSED: routed normally; failures past the threshold
/// OPEN it. OPEN: skipped until an escalating cooldown expires, then one
/// half-open probe is allowed -- success closes the breaker, failure
/// re-arms the cooldown. This is what turns a kill -9'd primary into a
/// handful of fast failures instead of every request re-timing-out on it.
class EndpointPool {
 public:
  EndpointPool(std::vector<int> ports, int threshold, int64_t cooldown_ms)
      : threshold_(threshold < 1 ? 1 : threshold),
        cooldown_ms_(cooldown_ms < 1 ? 1 : cooldown_ms) {
    for (int port : ports) endpoints_.push_back(Endpoint{port});
  }

  size_t size() const { return endpoints_.size(); }
  int PortAt(int index) const { return endpoints_[index].port; }

  /// The endpoint the next attempt should use: the first (in preference
  /// order) whose breaker is closed, else the first open one whose
  /// cooldown has expired (half-open probe). -1 when every breaker is
  /// open and cooling -- the caller backs off and retries.
  int Pick() {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = NowMs();
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      if (!endpoints_[i].open) return static_cast<int>(i);
    }
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      if (endpoints_[i].retry_at_ms <= now) return static_cast<int>(i);
    }
    return -1;
  }

  void ReportSuccess(int index) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Endpoint& e = endpoints_[static_cast<size_t>(index)];
      e.consecutive_failures = 0;
      e.open = false;
      e.opens = 0;
    }
    int prev = last_success_.exchange(index, std::memory_order_acq_rel);
    if (prev >= 0 && prev != index) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void ReportFailure(int index) {
    std::lock_guard<std::mutex> lock(mu_);
    Endpoint& e = endpoints_[static_cast<size_t>(index)];
    ++e.consecutive_failures;
    if (!e.open && e.consecutive_failures < threshold_) return;
    if (!e.open) breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    e.open = true;
    // Escalating cooldown, capped: a dead endpoint gets probed ever more
    // lazily, a flapping one is not hammered.
    e.opens = std::min<int>(e.opens + 1, 6);
    e.retry_at_ms = NowMs() + (cooldown_ms_ << (e.opens - 1));
  }

  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  uint64_t breaker_opens() const {
    return breaker_opens_.load(std::memory_order_relaxed);
  }

 private:
  struct Endpoint {
    int port;
    int consecutive_failures = 0;
    bool open = false;
    int opens = 0;          // consecutive open episodes, for escalation
    int64_t retry_at_ms = 0;
  };

  std::mutex mu_;
  std::vector<Endpoint> endpoints_;
  int threshold_;
  int64_t cooldown_ms_;
  std::atomic<int> last_success_{-1};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> breaker_opens_{0};
};

/// A connection that survives transient failure AND primary loss:
/// endpoint choice goes through the pool's breakers, every fresh
/// connection is health-gated (HEALTH must say serving=1 -- a never-synced
/// standby or a draining daemon is treated as down), and retryable
/// protocol errors (UNAVAILABLE, admission shed) resend with capped
/// exponential backoff + jitter. The jitter stream is seeded per client
/// (Rng::Child), so a soak run's retry timing is reproducible from --seed.
class RetryingConn {
 public:
  RetryingConn(EndpointPool* pool, int64_t io_deadline_ms, int max_retries,
               Rng rng, std::atomic<uint64_t>* retries)
      : pool_(pool),
        io_deadline_ms_(io_deadline_ms),
        max_retries_(max_retries),
        rng_(rng),
        retries_(retries) {}

  /// One request end to end: send the line, read its response block. Only
  /// returns false once max_retries consecutive attempts failed.
  bool Request(const std::string& line, std::string* final_line,
               std::string* body = nullptr) {
    for (int attempt = 0;; ++attempt) {
      int index = pool_->Pick();
      if (index >= 0) {
        if (conn_ == nullptr || conn_index_ != index) {
          conn_.reset();
          auto fresh = std::make_unique<Conn>(io_deadline_ms_);
          if (fresh->Connect(pool_->PortAt(index)) &&
              HealthGate(fresh.get())) {
            conn_ = std::move(fresh);
            conn_index_ = index;
          } else {
            pool_->ReportFailure(index);
          }
        }
        if (conn_ != nullptr) {
          if (body != nullptr) body->clear();
          if (conn_->SendLine(line) && conn_->ReadBlock(final_line, body)) {
            if (final_line->rfind("ERR NOT_READY", 0) == 0) {
              // A standby that lost its gate race: steer away and let the
              // breaker redirect the next attempts.
              pool_->ReportFailure(index);
              conn_.reset();
            } else {
              pool_->ReportSuccess(index);
              if (!Retryable(*final_line)) return true;
              // Shed/UNAVAILABLE: the endpoint is alive and asked us to
              // back off; not a breaker failure.
            }
          } else {
            // Peer vanished mid-request (reset, injected recv fault, a
            // SIGKILLed primary); the connection is unusable.
            pool_->ReportFailure(index);
            conn_.reset();
          }
        }
      }
      if (attempt >= max_retries_) return false;
      retries_->fetch_add(1);
      Backoff(attempt);
    }
  }

  /// Fire-and-forget (QUIT): best effort, no retry.
  void SendLine(const std::string& line) {
    if (conn_ != nullptr) conn_->SendLine(line);
  }

 private:
  /// One HEALTH round trip on a fresh connection. Routing on serving=
  /// rather than the state name keeps a SYNCING-but-synced standby (its
  /// primary just died) eligible -- it still serves correct reads.
  static bool HealthGate(Conn* conn) {
    std::string line;
    if (!conn->SendLine("HEALTH") || !conn->ReadLine(&line)) return false;
    return line.rfind("OK", 0) == 0 &&
           line.find(" serving=0") == std::string::npos;
  }

  static bool Retryable(const std::string& response) {
    // UNAVAILABLE is the transient-failure code by contract (injected
    // faults, dead workers); a shed is the daemon asking us to back off.
    if (response.rfind("ERR UNAVAILABLE", 0) == 0) return true;
    return response.rfind("ERR RESOURCE_EXHAUSTED", 0) == 0 &&
           response.find("shed") != std::string::npos;
  }

  /// Full-jitter exponential backoff: sleep uniform in (0, min(cap,
  /// base * 2^attempt)] so colliding clients decorrelate.
  void Backoff(int attempt) {
    const int64_t kBaseMs = 10;
    const int64_t kCapMs = 1'000;
    const int64_t ceiling = std::min(kCapMs, kBaseMs << std::min(attempt, 7));
    const int64_t sleep_ms =
        1 + static_cast<int64_t>(rng_.NextDouble() *
                                 static_cast<double>(ceiling));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }

  EndpointPool* pool_;
  int64_t io_deadline_ms_;
  int max_retries_;
  Rng rng_;
  std::atomic<uint64_t>* retries_;
  std::unique_ptr<Conn> conn_;
  int conn_index_ = -1;
};

/// Deterministic OQL shape pool: template rotated by index, the constant
/// keeps each shape structurally distinct.
std::string ShapeQuery(int64_t shape) {
  const int64_t age = 10 + (shape % 60);
  switch (shape % 4) {
    case 0:
      return "select p.name from p in P where p.age > " +
             std::to_string(age);
    case 1:
      return "select [v, p] from v in V, p in P where v in p.cars and "
             "p.age > " + std::to_string(age);
    case 2:
      return "select c.name from p in P, c in p.child where c.age > " +
             std::to_string(age);
    default:
      return "select a.city from p in P, a in p.grgs where p.age > " +
             std::to_string(age);
  }
}

struct Totals {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> retries{0};
};

/// Parses "OK <hit> <usec>\t<payload>"; returns false on ERR.
bool ParseResponse(const std::string& line, bool* hit, std::string* payload) {
  if (line.rfind("OK ", 0) != 0 || line.size() < 5) return false;
  *hit = line[3] == '1';
  size_t tab = line.find('\t');
  if (payload != nullptr) {
    *payload = tab == std::string::npos ? "" : line.substr(tab + 1);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> ports;
  int64_t clients = 4;
  int64_t requests = 50;
  int64_t shapes = 8;
  std::string tier = "gold";
  int64_t min_hit_rate = -1;
  int64_t max_retries = 5;
  int64_t io_deadline_ms = 10'000;
  int64_t think_ms = 0;
  int64_t breaker_threshold = 3;
  int64_t breaker_cooldown_ms = 250;
  uint64_t seed = 1;
  bool check_identity = false;
  bool shutdown_daemon = false;
  bool dump_stats = false;

  auto int64_flag = [&](int i, int64_t min, int64_t max) -> int64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "kolaload: %s needs a value\n", argv[i]);
      std::exit(1);
    }
    auto value = ParseInt64InRange(argv[i + 1], argv[i], min, max);
    if (!value.ok()) {
      std::fprintf(stderr, "kolaload: %s\n",
                   value.status().ToString().c_str());
      std::exit(1);
    }
    return value.value();
  };

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--port") {
      ports.assign(1, static_cast<int>(int64_flag(i++, 1, 65535)));
    } else if (arg == "--ports") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kolaload: --ports needs A,B,...\n");
        return 1;
      }
      ports.clear();
      for (const std::string& part : Split(argv[++i], ',')) {
        auto port = ParseInt64InRange(part.c_str(), "--ports", 1, 65535);
        if (!port.ok()) {
          std::fprintf(stderr, "kolaload: %s\n",
                       port.status().ToString().c_str());
          return 1;
        }
        ports.push_back(static_cast<int>(port.value()));
      }
    } else if (arg == "--clients") {
      clients = int64_flag(i++, 1, 1024);
    } else if (arg == "--requests") {
      requests = int64_flag(i++, 1, 10'000'000);
    } else if (arg == "--shapes") {
      shapes = int64_flag(i++, 1, 100'000);
    } else if (arg == "--tier" && i + 1 < argc) {
      tier = argv[++i];
    } else if (arg == "--min-hit-rate") {
      min_hit_rate = int64_flag(i++, 0, 100);
    } else if (arg == "--max-retries") {
      max_retries = int64_flag(i++, 0, 1'000);
    } else if (arg == "--io-deadline-ms") {
      io_deadline_ms = int64_flag(i++, 0, int64_t{1} << 40);
    } else if (arg == "--think-ms") {
      think_ms = int64_flag(i++, 0, 60'000);
    } else if (arg == "--breaker-threshold") {
      breaker_threshold = int64_flag(i++, 1, 1'000);
    } else if (arg == "--breaker-cooldown-ms") {
      breaker_cooldown_ms = int64_flag(i++, 1, int64_t{1} << 30);
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(int64_flag(i++, 0, int64_t{1} << 62));
    } else if (arg == "--check-identity") {
      check_identity = true;
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (arg == "--stats") {
      dump_stats = true;
    } else {
      std::fprintf(stderr, "kolaload: unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (ports.empty()) {
    std::fprintf(stderr, "kolaload: --port or --ports is required\n");
    return 1;
  }

  EndpointPool pool(ports, static_cast<int>(breaker_threshold),
                    breaker_cooldown_ms);
  Totals totals;
  const Rng root(seed);
  // Child-stream indices: clients take 0..clients-1, the warmup and
  // control connections take fixed high indices so client count does not
  // shift their jitter.
  const uint64_t kWarmStream = 1'000'000;
  const uint64_t kControlStream = 1'000'001;

  // Warmup: one pass over the shape pool on a dedicated connection fills
  // the cache, so the measured phase's hit rate is the steady state.
  {
    RetryingConn warm(&pool, io_deadline_ms, static_cast<int>(max_retries),
                      root.Child(kWarmStream), &totals.retries);
    for (int64_t s = 0; s < shapes; ++s) {
      std::string response;
      if (!warm.Request("Q " + tier + " oql " + ShapeQuery(s), &response)) {
        std::fprintf(stderr,
                     "kolaload: warmup shape %lld failed after retries\n",
                     static_cast<long long>(s));
        return 1;
      }
      if (response.rfind("OK", 0) != 0) {
        std::fprintf(stderr, "kolaload: warmup shape %lld failed: %s\n",
                     static_cast<long long>(s), response.c_str());
        return 1;
      }
    }
    warm.SendLine("QUIT");
  }

  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      RetryingConn conn(&pool, io_deadline_ms,
                        static_cast<int>(max_retries),
                        root.Child(static_cast<uint64_t>(c)),
                        &totals.retries);
      for (int64_t r = 0; r < requests; ++r) {
        // Interleave shape order per client so concurrent clients probe
        // different slots at any instant.
        int64_t shape = (r + c) % shapes;
        std::string response;
        if (!conn.Request("Q " + tier + " oql " + ShapeQuery(shape),
                          &response)) {
          totals.errors.fetch_add(1);
          continue;
        }
        bool hit = false;
        if (!ParseResponse(response, &hit, nullptr)) {
          totals.errors.fetch_add(1);
          continue;
        }
        (hit ? totals.hits : totals.misses).fetch_add(1);
        if (think_ms > 0) {
          // Pace the soak (think time) so CI can kill a daemon MID-soak
          // deterministically instead of racing a burst that finishes
          // first.
          std::this_thread::sleep_for(std::chrono::milliseconds(think_ms));
        }
      }
      conn.SendLine("QUIT");
    });
  }
  for (std::thread& t : workers) t.join();

  const uint64_t hits = totals.hits.load();
  const uint64_t misses = totals.misses.load();
  const uint64_t errors = totals.errors.load();
  const uint64_t retries = totals.retries.load();
  const uint64_t answered = hits + misses;
  const double hit_rate =
      answered == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                static_cast<double>(answered);
  std::printf("kolaload: %llu answered, %llu hits, %llu misses, %llu "
              "errors, %llu retries, hit rate %.1f%%, failovers %llu, "
              "breaker opens %llu\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(retries), hit_rate,
              static_cast<unsigned long long>(pool.failovers()),
              static_cast<unsigned long long>(pool.breaker_opens()));

  bool failed = errors != 0;
  if (min_hit_rate >= 0 && hit_rate < static_cast<double>(min_hit_rate)) {
    std::fprintf(stderr, "kolaload: FAIL hit rate %.1f%% < %lld%%\n",
                 hit_rate, static_cast<long long>(min_hit_rate));
    failed = true;
  }

  RetryingConn control(&pool, io_deadline_ms, static_cast<int>(max_retries),
                       root.Child(kControlStream), &totals.retries);

  if (check_identity) {
    // A warm hit (Q) and a cache-bypassing fresh optimization (F) of the
    // same shape must serialize identically, byte for byte -- including
    // when a failover moved the pair (or split it) across endpoints.
    int64_t mismatches = 0;
    for (int64_t s = 0; s < shapes; ++s) {
      std::string text = ShapeQuery(s);
      std::string warm_line, fresh_line;
      if (!control.Request("Q " + tier + " oql " + text, &warm_line) ||
          !control.Request("F " + tier + " oql " + text, &fresh_line)) {
        std::fprintf(stderr,
                     "kolaload: identity check failed after retries\n");
        return 1;
      }
      bool warm_hit = false, fresh_hit = false;
      std::string warm_payload, fresh_payload;
      if (!ParseResponse(warm_line, &warm_hit, &warm_payload) ||
          !ParseResponse(fresh_line, &fresh_hit, &fresh_payload)) {
        std::fprintf(stderr, "kolaload: identity check error on shape "
                     "%lld\n", static_cast<long long>(s));
        ++mismatches;
        continue;
      }
      if (warm_payload != fresh_payload) {
        std::fprintf(stderr,
                     "kolaload: FAIL shape %lld cached != fresh\n  warm:  "
                     "%s\n  fresh: %s\n",
                     static_cast<long long>(s), warm_payload.c_str(),
                     fresh_payload.c_str());
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      failed = true;
    } else {
      std::printf("kolaload: identity check passed for %lld shapes\n",
                  static_cast<long long>(shapes));
    }
  }

  if (dump_stats) {
    std::string final_line, body;
    if (control.Request("STATS", &final_line, &body)) {
      std::fputs(body.c_str(), stdout);
    }
  }

  if (shutdown_daemon) {
    // Drain the whole fleet, one direct connection per endpoint (the
    // pool would route every SHUTDOWN to the same healthy survivor).
    // Unreachable endpoints (the killed primary) are skipped; at least
    // one living daemon must acknowledge.
    int acked = 0;
    for (size_t e = 0; e < pool.size(); ++e) {
      Conn direct(io_deadline_ms);
      std::string response;
      if (direct.Connect(pool.PortAt(static_cast<int>(e))) &&
          direct.SendLine("SHUTDOWN") && direct.ReadBlock(&response) &&
          response.rfind("OK", 0) == 0) {
        ++acked;
      }
    }
    if (acked == 0) {
      std::fprintf(stderr, "kolaload: shutdown handshake failed\n");
      failed = true;
    } else {
      std::printf("kolaload: shutdown acknowledged by %d endpoint(s)\n",
                  acked);
    }
  } else {
    control.SendLine("QUIT");
  }

  return failed ? 1 : 0;
}
