// kolaload -- soak/load driver for kolad.
//
// Connects N client threads to a running kolad, drives repeated query
// shapes through the plan cache, and asserts service-level invariants:
//
//   --min-hit-rate P   post-warmup cache hit rate must reach P percent
//   --check-identity   every warm hit must be byte-identical to a fresh
//                      optimization of the same shape (the F verb bypasses
//                      the cache)
//
//   kolaload --port 7070 --clients 4 --requests 100 --shapes 8
//            --min-hit-rate 90 --check-identity --shutdown
//
// Transient failures -- connection refused or reset, the daemon shedding
// load, an injected socket fault -- are retried with capped exponential
// backoff and seeded jitter (--max-retries, --seed), so a chaos run under
// KOLA_FAULTS only fails when the daemon stays broken. Exit status 0 iff
// every request (eventually) succeeded and every assertion held.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parse_number.h"
#include "common/random.h"

using namespace kola;

namespace {

/// A blocking line-protocol connection to kolad.
class Conn {
 public:
  ~Conn() {
    if (fd_ >= 0) close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads lines until the block terminator (a line starting "OK" or
  /// "ERR"), which is returned; "S ..." stats lines accumulate in `body`.
  bool ReadBlock(std::string* final_line, std::string* body = nullptr) {
    std::string line;
    for (;;) {
      if (!ReadLine(&line)) return false;
      if (line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0) {
        *final_line = line;
        return true;
      }
      if (body != nullptr) *body += line + "\n";
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A Conn that survives transient failure: connection refused/reset and
/// retryable protocol errors (UNAVAILABLE, admission shed) reconnect and
/// resend with capped exponential backoff + jitter. The jitter stream is
/// seeded per client (Rng::Child), so a soak run's retry timing is
/// reproducible from --seed.
class RetryingConn {
 public:
  RetryingConn(int port, int max_retries, Rng rng,
               std::atomic<uint64_t>* retries)
      : port_(port),
        max_retries_(max_retries),
        rng_(rng),
        retries_(retries) {}

  /// One request end to end: send the line, read its response block. Only
  /// returns false once max_retries consecutive attempts failed.
  bool Request(const std::string& line, std::string* final_line,
               std::string* body = nullptr) {
    for (int attempt = 0;; ++attempt) {
      if (conn_ == nullptr) {
        auto fresh = std::make_unique<Conn>();
        if (fresh->Connect(port_)) conn_ = std::move(fresh);
      }
      if (conn_ != nullptr) {
        if (body != nullptr) body->clear();
        if (conn_->SendLine(line) && conn_->ReadBlock(final_line, body)) {
          if (!Retryable(*final_line)) return true;
        } else {
          // Peer vanished mid-request (reset, injected recv fault, daemon
          // restart); the connection is unusable and must be rebuilt.
          conn_.reset();
        }
      }
      if (attempt >= max_retries_) return false;
      retries_->fetch_add(1);
      Backoff(attempt);
    }
  }

  /// Fire-and-forget (QUIT): best effort, no retry.
  void SendLine(const std::string& line) {
    if (conn_ != nullptr) conn_->SendLine(line);
  }

 private:
  static bool Retryable(const std::string& response) {
    // UNAVAILABLE is the transient-failure code by contract (injected
    // faults, dead workers); a shed is the daemon asking us to back off.
    if (response.rfind("ERR UNAVAILABLE", 0) == 0) return true;
    return response.rfind("ERR RESOURCE_EXHAUSTED", 0) == 0 &&
           response.find("shed") != std::string::npos;
  }

  /// Full-jitter exponential backoff: sleep uniform in (0, min(cap,
  /// base * 2^attempt)] so colliding clients decorrelate.
  void Backoff(int attempt) {
    const int64_t kBaseMs = 10;
    const int64_t kCapMs = 1'000;
    const int64_t ceiling = std::min(kCapMs, kBaseMs << std::min(attempt, 7));
    const int64_t sleep_ms =
        1 + static_cast<int64_t>(rng_.NextDouble() *
                                 static_cast<double>(ceiling));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }

  int port_;
  int max_retries_;
  Rng rng_;
  std::atomic<uint64_t>* retries_;
  std::unique_ptr<Conn> conn_;
};

/// Deterministic OQL shape pool: template rotated by index, the constant
/// keeps each shape structurally distinct.
std::string ShapeQuery(int64_t shape) {
  const int64_t age = 10 + (shape % 60);
  switch (shape % 4) {
    case 0:
      return "select p.name from p in P where p.age > " +
             std::to_string(age);
    case 1:
      return "select [v, p] from v in V, p in P where v in p.cars and "
             "p.age > " + std::to_string(age);
    case 2:
      return "select c.name from p in P, c in p.child where c.age > " +
             std::to_string(age);
    default:
      return "select a.city from p in P, a in p.grgs where p.age > " +
             std::to_string(age);
  }
}

struct Totals {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> retries{0};
};

/// Parses "OK <hit> <usec>\t<payload>"; returns false on ERR.
bool ParseResponse(const std::string& line, bool* hit, std::string* payload) {
  if (line.rfind("OK ", 0) != 0 || line.size() < 5) return false;
  *hit = line[3] == '1';
  size_t tab = line.find('\t');
  if (payload != nullptr) {
    *payload = tab == std::string::npos ? "" : line.substr(tab + 1);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int64_t clients = 4;
  int64_t requests = 50;
  int64_t shapes = 8;
  std::string tier = "gold";
  int64_t min_hit_rate = -1;
  int64_t max_retries = 5;
  uint64_t seed = 1;
  bool check_identity = false;
  bool shutdown_daemon = false;
  bool dump_stats = false;

  auto int64_flag = [&](int i, int64_t min, int64_t max) -> int64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "kolaload: %s needs a value\n", argv[i]);
      std::exit(1);
    }
    auto value = ParseInt64InRange(argv[i + 1], argv[i], min, max);
    if (!value.ok()) {
      std::fprintf(stderr, "kolaload: %s\n",
                   value.status().ToString().c_str());
      std::exit(1);
    }
    return value.value();
  };

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--port") {
      port = static_cast<int>(int64_flag(i++, 1, 65535));
    } else if (arg == "--clients") {
      clients = int64_flag(i++, 1, 1024);
    } else if (arg == "--requests") {
      requests = int64_flag(i++, 1, 10'000'000);
    } else if (arg == "--shapes") {
      shapes = int64_flag(i++, 1, 100'000);
    } else if (arg == "--tier" && i + 1 < argc) {
      tier = argv[++i];
    } else if (arg == "--min-hit-rate") {
      min_hit_rate = int64_flag(i++, 0, 100);
    } else if (arg == "--max-retries") {
      max_retries = int64_flag(i++, 0, 1'000);
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(int64_flag(i++, 0, int64_t{1} << 62));
    } else if (arg == "--check-identity") {
      check_identity = true;
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (arg == "--stats") {
      dump_stats = true;
    } else {
      std::fprintf(stderr, "kolaload: unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "kolaload: --port is required\n");
    return 1;
  }

  Totals totals;
  const Rng root(seed);
  // Child-stream indices: clients take 0..clients-1, the warmup and
  // control connections take fixed high indices so client count does not
  // shift their jitter.
  const uint64_t kWarmStream = 1'000'000;
  const uint64_t kControlStream = 1'000'001;

  // Warmup: one pass over the shape pool on a dedicated connection fills
  // the cache, so the measured phase's hit rate is the steady state.
  {
    RetryingConn warm(port, static_cast<int>(max_retries),
                      root.Child(kWarmStream), &totals.retries);
    for (int64_t s = 0; s < shapes; ++s) {
      std::string response;
      if (!warm.Request("Q " + tier + " oql " + ShapeQuery(s), &response)) {
        std::fprintf(stderr,
                     "kolaload: warmup shape %lld failed after retries\n",
                     static_cast<long long>(s));
        return 1;
      }
      if (response.rfind("OK", 0) != 0) {
        std::fprintf(stderr, "kolaload: warmup shape %lld failed: %s\n",
                     static_cast<long long>(s), response.c_str());
        return 1;
      }
    }
    warm.SendLine("QUIT");
  }

  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      RetryingConn conn(port, static_cast<int>(max_retries),
                        root.Child(static_cast<uint64_t>(c)),
                        &totals.retries);
      for (int64_t r = 0; r < requests; ++r) {
        // Interleave shape order per client so concurrent clients probe
        // different slots at any instant.
        int64_t shape = (r + c) % shapes;
        std::string response;
        if (!conn.Request("Q " + tier + " oql " + ShapeQuery(shape),
                          &response)) {
          totals.errors.fetch_add(1);
          continue;
        }
        bool hit = false;
        if (!ParseResponse(response, &hit, nullptr)) {
          totals.errors.fetch_add(1);
          continue;
        }
        (hit ? totals.hits : totals.misses).fetch_add(1);
      }
      conn.SendLine("QUIT");
    });
  }
  for (std::thread& t : workers) t.join();

  const uint64_t hits = totals.hits.load();
  const uint64_t misses = totals.misses.load();
  const uint64_t errors = totals.errors.load();
  const uint64_t retries = totals.retries.load();
  const uint64_t answered = hits + misses;
  const double hit_rate =
      answered == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                static_cast<double>(answered);
  std::printf("kolaload: %llu answered, %llu hits, %llu misses, %llu "
              "errors, %llu retries, hit rate %.1f%%\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(retries), hit_rate);

  bool failed = errors != 0;
  if (min_hit_rate >= 0 && hit_rate < static_cast<double>(min_hit_rate)) {
    std::fprintf(stderr, "kolaload: FAIL hit rate %.1f%% < %lld%%\n",
                 hit_rate, static_cast<long long>(min_hit_rate));
    failed = true;
  }

  RetryingConn control(port, static_cast<int>(max_retries),
                       root.Child(kControlStream), &totals.retries);

  if (check_identity) {
    // A warm hit (Q) and a cache-bypassing fresh optimization (F) of the
    // same shape must serialize identically, byte for byte.
    int64_t mismatches = 0;
    for (int64_t s = 0; s < shapes; ++s) {
      std::string text = ShapeQuery(s);
      std::string warm_line, fresh_line;
      if (!control.Request("Q " + tier + " oql " + text, &warm_line) ||
          !control.Request("F " + tier + " oql " + text, &fresh_line)) {
        std::fprintf(stderr,
                     "kolaload: identity check failed after retries\n");
        return 1;
      }
      bool warm_hit = false, fresh_hit = false;
      std::string warm_payload, fresh_payload;
      if (!ParseResponse(warm_line, &warm_hit, &warm_payload) ||
          !ParseResponse(fresh_line, &fresh_hit, &fresh_payload)) {
        std::fprintf(stderr, "kolaload: identity check error on shape "
                     "%lld\n", static_cast<long long>(s));
        ++mismatches;
        continue;
      }
      if (warm_payload != fresh_payload) {
        std::fprintf(stderr,
                     "kolaload: FAIL shape %lld cached != fresh\n  warm:  "
                     "%s\n  fresh: %s\n",
                     static_cast<long long>(s), warm_payload.c_str(),
                     fresh_payload.c_str());
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      failed = true;
    } else {
      std::printf("kolaload: identity check passed for %lld shapes\n",
                  static_cast<long long>(shapes));
    }
  }

  if (dump_stats) {
    std::string final_line, body;
    if (control.Request("STATS", &final_line, &body)) {
      std::fputs(body.c_str(), stdout);
    }
  }

  if (shutdown_daemon) {
    std::string response;
    if (!control.Request("SHUTDOWN", &response) ||
        response.rfind("OK", 0) != 0) {
      std::fprintf(stderr, "kolaload: shutdown handshake failed\n");
      failed = true;
    }
  } else {
    control.SendLine("QUIT");
  }

  return failed ? 1 : 0;
}
