// Extending the optimizer without writing optimizer code: author new
// declarative rules, machine-check them against the operational semantics
// (the library's stand-in for the paper's Larch verification), attach a
// semantic precondition, and watch them fire.

#include <cstdio>

#include "common/fault_injection.h"
#include "rewrite/engine.h"
#include "rewrite/verifier.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

int main() {
  using namespace kola;  // NOLINT: example brevity

  if (Status faults = LatchFaultInjectionFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }


  CarWorldOptions options;
  options.num_persons = 10;
  auto db = BuildCarWorld(options);
  SchemaTypes schema = SchemaTypes::CarWorld();
  VerifyOptions verify_options;
  verify_options.trials = 300;

  std::printf("=== 1. Author a rule and verify it ===\n");
  auto fusion = MakeRule("my.flat-iterate",
                         "flatten after a map of constants is absorbable",
                         "flat o iterate(?p, Kf(?k))",
                         "con(?p @ ?k2, ?f2, ?g2)",  // deliberately bogus
                         Sort::kFunction);
  std::printf("ill-formed rule rejected: %s\n",
              fusion.ok() ? "NO (bug)" : fusion.status().ToString().c_str());

  auto good = MakeRule("my.map-map", "my own fusion law",
                       "iterate(Kp(T), ?f) o iterate(Kp(T), ?g)",
                       "iterate(Kp(T), ?f o ?g)", Sort::kFunction);
  if (!good.ok()) return 1;
  auto outcome = VerifyRule(good.value(), *db, schema, verify_options);
  if (!outcome.ok()) return 1;
  std::printf("my.map-map: %s\n", outcome->Summary().c_str());

  std::printf("\n=== 2. The verifier catches a plausible-but-wrong rule "
              "===\n");
  auto wrong = MakeRule("my.broken", "dropped the inner predicate",
                        "iterate(?p, ?f) o iterate(?q, ?g)",
                        "iterate(?p @ ?g, ?f o ?g)", Sort::kFunction);
  if (!wrong.ok()) return 1;
  auto broken = VerifyRule(wrong.value(), *db, schema, verify_options);
  if (!broken.ok()) return 1;
  std::printf("my.broken: %s\n", broken->Summary().c_str());
  if (!broken->counterexample.empty()) {
    std::printf("counterexample:\n  %s\n", broken->counterexample.c_str());
  }

  std::printf("\n=== 3. Preconditions without code ===\n");
  // Declare that `year` is a key for vehicles (true in this tiny world
  // only as an illustration), and let inference derive injectivity of a
  // composite.
  PropertyStore store = PropertyStore::Default();
  store.AddFact("injective", PrimFn("year"));
  std::printf("injective(year):            %s\n",
              store.Holds("injective", PrimFn("year")) ? "yes" : "no");
  auto composite = ParseTerm("succ o year", Sort::kFunction);
  if (!composite.ok()) return 1;
  std::printf("injective(succ o year):     %s   (via inj-compose)\n",
              store.Holds("injective", composite.value()) ? "yes" : "no");
  auto not_injective = ParseTerm("age o addr", Sort::kFunction);
  if (!not_injective.ok()) return 1;
  std::printf("injective(age o addr):      %s\n",
              store.Holds("injective", not_injective.value()) ? "yes"
                                                              : "no");

  std::printf("\n=== 4. A guarded rule fires only when the property holds "
              "===\n");
  std::vector<Rule> all = AllCatalogRules();
  // Catalog lookups on names that might be mistyped go through TryFindRule:
  // a miss is a printable error, not a process abort.
  auto missing = TryFindRule(all, "ext.no-such-rule");
  std::printf("lookup of a bogus id rejected: %s\n",
              missing.ok() ? "NO (bug)"
                           : missing.status().ToString().c_str());
  auto guarded_lookup = TryFindRule(all, "ext.injective-intersect");
  if (!guarded_lookup.ok()) {
    std::printf("catalog lookup failed: %s\n",
                guarded_lookup.status().ToString().c_str());
    return 1;
  }
  const Rule& guarded = *guarded_lookup.value();
  Rewriter rewriter(&store);
  for (const char* fn : {"year", "make"}) {
    std::string text = std::string("intersect o (iterate(Kp(T), ") + fn +
                       ") x iterate(Kp(T), " + fn + "))";
    auto query = ParseTerm(text, Sort::kFunction);
    if (!query.ok()) return 1;
    auto fired = rewriter.ApplyAtRoot(guarded, query.value());
    std::printf("%s: rule %s\n", fn,
                fired.has_value() ? "fired (injective)"
                                  : "did not fire (not known injective)");
    if (fired) std::printf("  -> %s\n", (*fired)->ToString().c_str());
  }
  return 0;
}
