file(REMOVE_RECURSE
  "CMakeFiles/bench_hidden_join.dir/bench_hidden_join.cc.o"
  "CMakeFiles/bench_hidden_join.dir/bench_hidden_join.cc.o.d"
  "bench_hidden_join"
  "bench_hidden_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hidden_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
