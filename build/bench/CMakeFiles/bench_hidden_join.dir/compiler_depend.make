# Empty compiler generated dependencies file for bench_hidden_join.
# This may be replaced when dependencies are built.
