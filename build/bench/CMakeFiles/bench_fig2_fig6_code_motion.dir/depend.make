# Empty dependencies file for bench_fig2_fig6_code_motion.
# This may be replaced when dependencies are built.
