file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fig6_code_motion.dir/bench_fig2_fig6_code_motion.cc.o"
  "CMakeFiles/bench_fig2_fig6_code_motion.dir/bench_fig2_fig6_code_motion.cc.o.d"
  "bench_fig2_fig6_code_motion"
  "bench_fig2_fig6_code_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fig6_code_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
