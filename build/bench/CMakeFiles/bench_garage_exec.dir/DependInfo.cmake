
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_garage_exec.cc" "bench/CMakeFiles/bench_garage_exec.dir/bench_garage_exec.cc.o" "gcc" "bench/CMakeFiles/bench_garage_exec.dir/bench_garage_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/kola_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kola_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/kola_values.dir/DependInfo.cmake"
  "/root/repo/build/src/coko/CMakeFiles/kola_coko.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/kola_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/kola_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/kola_term.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kola_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
