# Empty dependencies file for bench_garage_exec.
# This may be replaced when dependencies are built.
