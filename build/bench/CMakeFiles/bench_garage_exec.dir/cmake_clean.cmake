file(REMOVE_RECURSE
  "CMakeFiles/bench_garage_exec.dir/bench_garage_exec.cc.o"
  "CMakeFiles/bench_garage_exec.dir/bench_garage_exec.cc.o.d"
  "bench_garage_exec"
  "bench_garage_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_garage_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
