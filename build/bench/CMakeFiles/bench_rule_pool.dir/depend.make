# Empty dependencies file for bench_rule_pool.
# This may be replaced when dependencies are built.
