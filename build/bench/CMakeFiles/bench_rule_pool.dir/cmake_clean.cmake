file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_pool.dir/bench_rule_pool.cc.o"
  "CMakeFiles/bench_rule_pool.dir/bench_rule_pool.cc.o.d"
  "bench_rule_pool"
  "bench_rule_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
