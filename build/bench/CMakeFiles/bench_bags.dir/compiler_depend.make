# Empty compiler generated dependencies file for bench_bags.
# This may be replaced when dependencies are built.
