file(REMOVE_RECURSE
  "CMakeFiles/bench_bags.dir/bench_bags.cc.o"
  "CMakeFiles/bench_bags.dir/bench_bags.cc.o.d"
  "bench_bags"
  "bench_bags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
