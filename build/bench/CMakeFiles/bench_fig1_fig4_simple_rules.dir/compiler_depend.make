# Empty compiler generated dependencies file for bench_fig1_fig4_simple_rules.
# This may be replaced when dependencies are built.
