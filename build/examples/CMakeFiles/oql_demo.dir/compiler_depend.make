# Empty compiler generated dependencies file for oql_demo.
# This may be replaced when dependencies are built.
