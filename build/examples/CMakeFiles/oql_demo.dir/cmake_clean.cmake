file(REMOVE_RECURSE
  "CMakeFiles/oql_demo.dir/oql_demo.cpp.o"
  "CMakeFiles/oql_demo.dir/oql_demo.cpp.o.d"
  "oql_demo"
  "oql_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oql_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
