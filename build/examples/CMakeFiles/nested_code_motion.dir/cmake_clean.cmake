file(REMOVE_RECURSE
  "CMakeFiles/nested_code_motion.dir/nested_code_motion.cpp.o"
  "CMakeFiles/nested_code_motion.dir/nested_code_motion.cpp.o.d"
  "nested_code_motion"
  "nested_code_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_code_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
