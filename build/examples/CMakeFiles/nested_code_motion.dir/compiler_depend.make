# Empty compiler generated dependencies file for nested_code_motion.
# This may be replaced when dependencies are built.
