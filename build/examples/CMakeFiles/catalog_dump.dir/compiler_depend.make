# Empty compiler generated dependencies file for catalog_dump.
# This may be replaced when dependencies are built.
