file(REMOVE_RECURSE
  "CMakeFiles/catalog_dump.dir/catalog_dump.cpp.o"
  "CMakeFiles/catalog_dump.dir/catalog_dump.cpp.o.d"
  "catalog_dump"
  "catalog_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
