file(REMOVE_RECURSE
  "CMakeFiles/rule_workbench.dir/rule_workbench.cpp.o"
  "CMakeFiles/rule_workbench.dir/rule_workbench.cpp.o.d"
  "rule_workbench"
  "rule_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
