# Empty dependencies file for garage_query.
# This may be replaced when dependencies are built.
