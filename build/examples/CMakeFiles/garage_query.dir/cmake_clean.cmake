file(REMOVE_RECURSE
  "CMakeFiles/garage_query.dir/garage_query.cpp.o"
  "CMakeFiles/garage_query.dir/garage_query.cpp.o.d"
  "garage_query"
  "garage_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garage_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
