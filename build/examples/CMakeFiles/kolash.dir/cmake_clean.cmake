file(REMOVE_RECURSE
  "CMakeFiles/kolash.dir/kolash.cpp.o"
  "CMakeFiles/kolash.dir/kolash.cpp.o.d"
  "kolash"
  "kolash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kolash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
