# Empty dependencies file for kolash.
# This may be replaced when dependencies are built.
