# Empty dependencies file for derivations_test.
# This may be replaced when dependencies are built.
