file(REMOVE_RECURSE
  "CMakeFiles/derivations_test.dir/derivations_test.cc.o"
  "CMakeFiles/derivations_test.dir/derivations_test.cc.o.d"
  "derivations_test"
  "derivations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
