file(REMOVE_RECURSE
  "CMakeFiles/aqua_test.dir/aqua_test.cc.o"
  "CMakeFiles/aqua_test.dir/aqua_test.cc.o.d"
  "aqua_test"
  "aqua_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
