# Empty dependencies file for aqua_test.
# This may be replaced when dependencies are built.
