file(REMOVE_RECURSE
  "CMakeFiles/coko_test.dir/coko_test.cc.o"
  "CMakeFiles/coko_test.dir/coko_test.cc.o.d"
  "coko_test"
  "coko_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coko_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
