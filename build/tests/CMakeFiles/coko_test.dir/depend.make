# Empty dependencies file for coko_test.
# This may be replaced when dependencies are built.
