file(REMOVE_RECURSE
  "CMakeFiles/hidden_join_test.dir/hidden_join_test.cc.o"
  "CMakeFiles/hidden_join_test.dir/hidden_join_test.cc.o.d"
  "hidden_join_test"
  "hidden_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
