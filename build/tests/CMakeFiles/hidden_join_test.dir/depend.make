# Empty dependencies file for hidden_join_test.
# This may be replaced when dependencies are built.
