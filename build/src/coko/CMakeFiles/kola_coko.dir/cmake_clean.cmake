file(REMOVE_RECURSE
  "CMakeFiles/kola_coko.dir/parser.cc.o"
  "CMakeFiles/kola_coko.dir/parser.cc.o.d"
  "CMakeFiles/kola_coko.dir/strategy.cc.o"
  "CMakeFiles/kola_coko.dir/strategy.cc.o.d"
  "libkola_coko.a"
  "libkola_coko.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_coko.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
