# Empty compiler generated dependencies file for kola_coko.
# This may be replaced when dependencies are built.
