file(REMOVE_RECURSE
  "libkola_coko.a"
)
