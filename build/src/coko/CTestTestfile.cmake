# CMake generated Testfile for 
# Source directory: /root/repo/src/coko
# Build directory: /root/repo/build/src/coko
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
