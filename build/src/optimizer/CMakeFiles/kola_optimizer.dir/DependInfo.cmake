
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/code_motion.cc" "src/optimizer/CMakeFiles/kola_optimizer.dir/code_motion.cc.o" "gcc" "src/optimizer/CMakeFiles/kola_optimizer.dir/code_motion.cc.o.d"
  "/root/repo/src/optimizer/cost.cc" "src/optimizer/CMakeFiles/kola_optimizer.dir/cost.cc.o" "gcc" "src/optimizer/CMakeFiles/kola_optimizer.dir/cost.cc.o.d"
  "/root/repo/src/optimizer/explore.cc" "src/optimizer/CMakeFiles/kola_optimizer.dir/explore.cc.o" "gcc" "src/optimizer/CMakeFiles/kola_optimizer.dir/explore.cc.o.d"
  "/root/repo/src/optimizer/hidden_join.cc" "src/optimizer/CMakeFiles/kola_optimizer.dir/hidden_join.cc.o" "gcc" "src/optimizer/CMakeFiles/kola_optimizer.dir/hidden_join.cc.o.d"
  "/root/repo/src/optimizer/monolithic.cc" "src/optimizer/CMakeFiles/kola_optimizer.dir/monolithic.cc.o" "gcc" "src/optimizer/CMakeFiles/kola_optimizer.dir/monolithic.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/kola_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/kola_optimizer.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coko/CMakeFiles/kola_coko.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/kola_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/kola_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kola_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/kola_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kola_common.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/kola_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
