file(REMOVE_RECURSE
  "libkola_optimizer.a"
)
