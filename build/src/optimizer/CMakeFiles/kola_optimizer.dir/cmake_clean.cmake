file(REMOVE_RECURSE
  "CMakeFiles/kola_optimizer.dir/code_motion.cc.o"
  "CMakeFiles/kola_optimizer.dir/code_motion.cc.o.d"
  "CMakeFiles/kola_optimizer.dir/cost.cc.o"
  "CMakeFiles/kola_optimizer.dir/cost.cc.o.d"
  "CMakeFiles/kola_optimizer.dir/explore.cc.o"
  "CMakeFiles/kola_optimizer.dir/explore.cc.o.d"
  "CMakeFiles/kola_optimizer.dir/hidden_join.cc.o"
  "CMakeFiles/kola_optimizer.dir/hidden_join.cc.o.d"
  "CMakeFiles/kola_optimizer.dir/monolithic.cc.o"
  "CMakeFiles/kola_optimizer.dir/monolithic.cc.o.d"
  "CMakeFiles/kola_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/kola_optimizer.dir/optimizer.cc.o.d"
  "libkola_optimizer.a"
  "libkola_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
