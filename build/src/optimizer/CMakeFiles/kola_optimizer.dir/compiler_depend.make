# Empty compiler generated dependencies file for kola_optimizer.
# This may be replaced when dependencies are built.
