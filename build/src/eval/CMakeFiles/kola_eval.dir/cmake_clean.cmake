file(REMOVE_RECURSE
  "CMakeFiles/kola_eval.dir/evaluator.cc.o"
  "CMakeFiles/kola_eval.dir/evaluator.cc.o.d"
  "libkola_eval.a"
  "libkola_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
