# Empty dependencies file for kola_eval.
# This may be replaced when dependencies are built.
