file(REMOVE_RECURSE
  "libkola_eval.a"
)
