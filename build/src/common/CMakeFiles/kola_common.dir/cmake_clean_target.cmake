file(REMOVE_RECURSE
  "libkola_common.a"
)
