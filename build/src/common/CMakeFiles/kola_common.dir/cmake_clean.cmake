file(REMOVE_RECURSE
  "CMakeFiles/kola_common.dir/random.cc.o"
  "CMakeFiles/kola_common.dir/random.cc.o.d"
  "CMakeFiles/kola_common.dir/status.cc.o"
  "CMakeFiles/kola_common.dir/status.cc.o.d"
  "CMakeFiles/kola_common.dir/string_util.cc.o"
  "CMakeFiles/kola_common.dir/string_util.cc.o.d"
  "libkola_common.a"
  "libkola_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
