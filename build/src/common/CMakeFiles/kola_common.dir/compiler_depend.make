# Empty compiler generated dependencies file for kola_common.
# This may be replaced when dependencies are built.
