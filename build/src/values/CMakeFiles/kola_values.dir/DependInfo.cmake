
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/values/car_world.cc" "src/values/CMakeFiles/kola_values.dir/car_world.cc.o" "gcc" "src/values/CMakeFiles/kola_values.dir/car_world.cc.o.d"
  "/root/repo/src/values/company_world.cc" "src/values/CMakeFiles/kola_values.dir/company_world.cc.o" "gcc" "src/values/CMakeFiles/kola_values.dir/company_world.cc.o.d"
  "/root/repo/src/values/database.cc" "src/values/CMakeFiles/kola_values.dir/database.cc.o" "gcc" "src/values/CMakeFiles/kola_values.dir/database.cc.o.d"
  "/root/repo/src/values/value.cc" "src/values/CMakeFiles/kola_values.dir/value.cc.o" "gcc" "src/values/CMakeFiles/kola_values.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kola_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
