file(REMOVE_RECURSE
  "libkola_values.a"
)
