file(REMOVE_RECURSE
  "CMakeFiles/kola_values.dir/car_world.cc.o"
  "CMakeFiles/kola_values.dir/car_world.cc.o.d"
  "CMakeFiles/kola_values.dir/company_world.cc.o"
  "CMakeFiles/kola_values.dir/company_world.cc.o.d"
  "CMakeFiles/kola_values.dir/database.cc.o"
  "CMakeFiles/kola_values.dir/database.cc.o.d"
  "CMakeFiles/kola_values.dir/value.cc.o"
  "CMakeFiles/kola_values.dir/value.cc.o.d"
  "libkola_values.a"
  "libkola_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
