# Empty compiler generated dependencies file for kola_values.
# This may be replaced when dependencies are built.
