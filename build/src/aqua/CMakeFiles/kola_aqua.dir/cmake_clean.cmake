file(REMOVE_RECURSE
  "CMakeFiles/kola_aqua.dir/eval.cc.o"
  "CMakeFiles/kola_aqua.dir/eval.cc.o.d"
  "CMakeFiles/kola_aqua.dir/expr.cc.o"
  "CMakeFiles/kola_aqua.dir/expr.cc.o.d"
  "CMakeFiles/kola_aqua.dir/parser.cc.o"
  "CMakeFiles/kola_aqua.dir/parser.cc.o.d"
  "CMakeFiles/kola_aqua.dir/transform.cc.o"
  "CMakeFiles/kola_aqua.dir/transform.cc.o.d"
  "libkola_aqua.a"
  "libkola_aqua.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_aqua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
