file(REMOVE_RECURSE
  "libkola_aqua.a"
)
