
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/eval.cc" "src/aqua/CMakeFiles/kola_aqua.dir/eval.cc.o" "gcc" "src/aqua/CMakeFiles/kola_aqua.dir/eval.cc.o.d"
  "/root/repo/src/aqua/expr.cc" "src/aqua/CMakeFiles/kola_aqua.dir/expr.cc.o" "gcc" "src/aqua/CMakeFiles/kola_aqua.dir/expr.cc.o.d"
  "/root/repo/src/aqua/parser.cc" "src/aqua/CMakeFiles/kola_aqua.dir/parser.cc.o" "gcc" "src/aqua/CMakeFiles/kola_aqua.dir/parser.cc.o.d"
  "/root/repo/src/aqua/transform.cc" "src/aqua/CMakeFiles/kola_aqua.dir/transform.cc.o" "gcc" "src/aqua/CMakeFiles/kola_aqua.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/values/CMakeFiles/kola_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kola_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
