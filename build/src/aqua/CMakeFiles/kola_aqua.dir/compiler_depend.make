# Empty compiler generated dependencies file for kola_aqua.
# This may be replaced when dependencies are built.
