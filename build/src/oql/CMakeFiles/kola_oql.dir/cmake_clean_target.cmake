file(REMOVE_RECURSE
  "libkola_oql.a"
)
