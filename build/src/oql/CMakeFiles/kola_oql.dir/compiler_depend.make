# Empty compiler generated dependencies file for kola_oql.
# This may be replaced when dependencies are built.
