file(REMOVE_RECURSE
  "CMakeFiles/kola_oql.dir/oql.cc.o"
  "CMakeFiles/kola_oql.dir/oql.cc.o.d"
  "libkola_oql.a"
  "libkola_oql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_oql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
