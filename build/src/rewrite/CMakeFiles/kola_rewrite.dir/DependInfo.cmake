
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/engine.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/engine.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/engine.cc.o.d"
  "/root/repo/src/rewrite/generate.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/generate.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/generate.cc.o.d"
  "/root/repo/src/rewrite/match.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/match.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/match.cc.o.d"
  "/root/repo/src/rewrite/properties.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/properties.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/properties.cc.o.d"
  "/root/repo/src/rewrite/rule.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/rule.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/rule.cc.o.d"
  "/root/repo/src/rewrite/types.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/types.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/types.cc.o.d"
  "/root/repo/src/rewrite/verifier.cc" "src/rewrite/CMakeFiles/kola_rewrite.dir/verifier.cc.o" "gcc" "src/rewrite/CMakeFiles/kola_rewrite.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/term/CMakeFiles/kola_term.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kola_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/kola_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kola_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
