file(REMOVE_RECURSE
  "libkola_rewrite.a"
)
