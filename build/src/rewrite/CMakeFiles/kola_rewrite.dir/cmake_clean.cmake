file(REMOVE_RECURSE
  "CMakeFiles/kola_rewrite.dir/engine.cc.o"
  "CMakeFiles/kola_rewrite.dir/engine.cc.o.d"
  "CMakeFiles/kola_rewrite.dir/generate.cc.o"
  "CMakeFiles/kola_rewrite.dir/generate.cc.o.d"
  "CMakeFiles/kola_rewrite.dir/match.cc.o"
  "CMakeFiles/kola_rewrite.dir/match.cc.o.d"
  "CMakeFiles/kola_rewrite.dir/properties.cc.o"
  "CMakeFiles/kola_rewrite.dir/properties.cc.o.d"
  "CMakeFiles/kola_rewrite.dir/rule.cc.o"
  "CMakeFiles/kola_rewrite.dir/rule.cc.o.d"
  "CMakeFiles/kola_rewrite.dir/types.cc.o"
  "CMakeFiles/kola_rewrite.dir/types.cc.o.d"
  "CMakeFiles/kola_rewrite.dir/verifier.cc.o"
  "CMakeFiles/kola_rewrite.dir/verifier.cc.o.d"
  "libkola_rewrite.a"
  "libkola_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
