# Empty compiler generated dependencies file for kola_rewrite.
# This may be replaced when dependencies are built.
