file(REMOVE_RECURSE
  "CMakeFiles/kola_term.dir/parser.cc.o"
  "CMakeFiles/kola_term.dir/parser.cc.o.d"
  "CMakeFiles/kola_term.dir/printer.cc.o"
  "CMakeFiles/kola_term.dir/printer.cc.o.d"
  "CMakeFiles/kola_term.dir/term.cc.o"
  "CMakeFiles/kola_term.dir/term.cc.o.d"
  "libkola_term.a"
  "libkola_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
