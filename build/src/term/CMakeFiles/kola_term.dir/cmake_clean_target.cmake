file(REMOVE_RECURSE
  "libkola_term.a"
)
