# Empty dependencies file for kola_term.
# This may be replaced when dependencies are built.
