file(REMOVE_RECURSE
  "libkola_translate.a"
)
