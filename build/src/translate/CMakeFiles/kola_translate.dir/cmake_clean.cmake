file(REMOVE_RECURSE
  "CMakeFiles/kola_translate.dir/translate.cc.o"
  "CMakeFiles/kola_translate.dir/translate.cc.o.d"
  "libkola_translate.a"
  "libkola_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
