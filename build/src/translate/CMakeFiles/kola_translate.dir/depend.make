# Empty dependencies file for kola_translate.
# This may be replaced when dependencies are built.
