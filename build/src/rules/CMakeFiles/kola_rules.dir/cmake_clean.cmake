file(REMOVE_RECURSE
  "CMakeFiles/kola_rules.dir/catalog.cc.o"
  "CMakeFiles/kola_rules.dir/catalog.cc.o.d"
  "libkola_rules.a"
  "libkola_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kola_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
