# Empty dependencies file for kola_rules.
# This may be replaced when dependencies are built.
