file(REMOVE_RECURSE
  "libkola_rules.a"
)
